package jitcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// On-disk entry layout, little-endian:
//
//	offset  size  field
//	0       4     magic "NVJC"
//	4       4     format version
//	8       8     payload length
//	16      32    SHA-256 of the payload
//	48      n     payload
//
// The key is derived from the entry's *inputs* (it is a content address of
// what produced the blob, not of the blob itself), so integrity needs the
// explicit payload checksum: a bit flip anywhere in the payload, a short
// read, a bad magic or a version skew all fail validation and evict the
// file.
const (
	diskMagic      = "NVJC"
	diskVersion    = 1
	diskHeaderSize = 4 + 4 + 8 + sha256.Size
)

// objectsDir is the subdirectory holding entry files; temp files for
// atomic publication live beside them so rename never crosses filesystems.
const objectsDir = "objects"

func (c *Cache) initDir() error {
	return os.MkdirAll(filepath.Join(c.dir, objectsDir), 0o755)
}

func (c *Cache) objectPath(key Key) string {
	return filepath.Join(c.dir, objectsDir, key.String())
}

// diskGet reads and validates one entry. Any validation failure — wrong
// magic, unknown version, length mismatch (truncation), checksum mismatch
// (corruption) — evicts the file and reports a miss, so the caller falls
// back to a fresh JIT instead of failing the launch.
func (c *Cache) diskGet(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.objectPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, err := validateEntry(raw)
	if err != nil {
		os.Remove(path)
		c.mu.Lock()
		c.stats.CorruptEvicted++
		c.mu.Unlock()
		return nil, false
	}
	return payload, true
}

// validateEntry checks an entry file's header and checksum, returning the
// payload.
func validateEntry(raw []byte) ([]byte, error) {
	if len(raw) < diskHeaderSize {
		return nil, fmt.Errorf("jitcache: entry truncated below header (%d bytes)", len(raw))
	}
	if string(raw[:4]) != diskMagic {
		return nil, fmt.Errorf("jitcache: bad magic %q", raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != diskVersion {
		return nil, fmt.Errorf("jitcache: entry format version %d, want %d", v, diskVersion)
	}
	n := binary.LittleEndian.Uint64(raw[8:16])
	if n != uint64(len(raw)-diskHeaderSize) {
		return nil, fmt.Errorf("jitcache: entry payload length %d, have %d bytes", n, len(raw)-diskHeaderSize)
	}
	payload := raw[diskHeaderSize:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[16:16+sha256.Size]) {
		return nil, fmt.Errorf("jitcache: entry payload checksum mismatch")
	}
	return payload, nil
}

// diskPut atomically publishes one entry: the header+payload are written to
// a temp file in the objects directory and renamed over the final name. A
// writer that crashes mid-write leaves only a temp file the store never
// reads; rename is atomic on POSIX, so readers observe either the old state
// or the complete new entry, never a torn one. No fsync: this is a cache,
// not a database — an entry torn by a power cut fails the header checksum
// on its first read and is evicted (diskGet), which only costs one re-JIT,
// whereas fsync-per-entry makes cold runs publish-bound (~3 ms/entry on a
// loaded filesystem vs ~100 µs of codegen for a small kernel). Returns the
// payload bytes written (0 on failure).
func (c *Cache) diskPut(key Key, payload []byte) (uint64, error) {
	if c.dir == "" {
		return 0, nil
	}
	dir := filepath.Join(c.dir, objectsDir)
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		// The directory may have been removed behind us; recreate once.
		if err := c.initDir(); err != nil {
			return 0, err
		}
		if f, err = os.CreateTemp(dir, "tmp-*"); err != nil {
			return 0, err
		}
	}
	tmp := f.Name()
	cleanup := func(err error) (uint64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	var hdr [diskHeaderSize]byte
	copy(hdr[:4], diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], diskVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[16:], sum[:])
	if _, err := f.Write(hdr[:]); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, c.objectPath(key)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return uint64(len(payload)), nil
}

// diskDelete removes one entry file, ignoring absence.
func (c *Cache) diskDelete(key Key) {
	if c.dir == "" {
		return
	}
	os.Remove(c.objectPath(key))
}
