// Full memory-address tracing over the device→host streaming channel — the
// flagship channel client. Every dynamic global memory access is captured as
// a warp-level record carrying the static instruction index, opcode, warp id,
// execution mask, and all 32 effective lane addresses; records stream to the
// host through mid-kernel flushes, so the device-resident buffers can be far
// smaller than the trace.
//
// The example runs the workload once under each backpressure policy:
// ChannelDrop ships what fits and counts the loss; ChannelBlock makes full
// warps wait for the next flush and delivers the complete trace.
//
//	go run ./examples/memtrace
package main

import (
	"fmt"
	"log"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/memtrace"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/nvbit"
)

// trace runs AlexNet with the memory tracer attached, streaming records
// instead of accumulating them: OnRecord fires at flush delivery, so the
// host-side footprint stays bounded no matter how long the trace is.
func trace(policy nvbit.ChannelPolicy, capacity int) (sample []memtrace.Record, lines map[uint64]bool, st nvbit.ChannelStats, tool *memtrace.Tool) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	tool = memtrace.New(capacity)
	tool.Policy = policy
	tool.Keep = false
	lines = make(map[uint64]bool)
	tool.OnRecord = func(r memtrace.Record) {
		if len(sample) < 4 {
			sample = append(sample, r)
		}
		for lane := 0; lane < 32; lane++ {
			if r.ExecMask&(1<<lane) != 0 {
				lines[r.Addrs[lane]>>7] = true // 128-byte cache lines
			}
		}
	}
	if _, err := nvbit.Attach(api, tool, nvbit.WithScheduler(gpusim.SchedulerParallelSM)); err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlsuite.Run(ctx, nil, mlsuite.Networks()[0] /* AlexNet */); err != nil {
		log.Fatal(err)
	}
	st = tool.Stats()
	return sample, lines, st, tool
}

func main() {
	// A deliberately tiny channel: the aggregate capacity is far below the
	// trace length, so the stream only completes through mid-kernel flushes.
	const capacity = 4096

	for _, policy := range []nvbit.ChannelPolicy{nvbit.ChannelDrop, nvbit.ChannelBlock} {
		sample, lines, st, tool := trace(policy, capacity)
		fmt.Printf("policy %v: %d warp-level accesses delivered, %d dropped\n",
			policy, st.Delivered, st.Dropped)
		fmt.Printf("  channel: %d flushes (%d sweep, %d cta, %d drain), %d bytes shipped\n",
			st.Flushes, st.TickFlushes, st.CTAFlushes, st.DrainFlushes, st.BytesShipped)
		fmt.Printf("  footprint: %d distinct 128-byte lines touched\n", len(lines))
		if policy == nvbit.ChannelBlock {
			fmt.Println("  first records of the (complete) trace:")
			for _, r := range sample {
				fmt.Printf("    %-12s inst %2d warp %3d mask %08x lane0 addr %#x\n",
					tool.KernelName(r.KernelID), r.InstIdx, r.WarpID, r.ExecMask, r.Addrs[0])
			}
		}
	}
	fmt.Println("\nthe trace is ~50x the channel capacity: mid-kernel flushes recycle the")
	fmt.Println("tiny buffers. If a burst ever outruns a flush, Drop counts the loss")
	fmt.Println("exactly while Block paces warps against the receiver for zero loss.")
}
