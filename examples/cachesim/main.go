// Cache simulation on a dynamically collected address trace — the use case
// the paper's introduction motivates (CMP$im-style simulators built on
// binary instrumentation). The tool records every global memory access of an
// ML workload — including those issued inside the binary-only accelerated
// library — into a device→host streaming channel and replays the trace
// through configurable cache models, letting an architect sweep cache
// geometries without re-running the application.
//
//	go run ./examples/cachesim
package main

import (
	"fmt"
	"log"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/cachesim"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/nvbit"
)

func replay(cfg cachesim.Config) cachesim.Stats {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	tool := cachesim.New(cfg)
	if _, err := nvbit.Attach(api, tool); err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlsuite.Run(ctx, nil, mlsuite.Networks()[0] /* AlexNet */); err != nil {
		log.Fatal(err)
	}
	return tool.Stats()
}

func main() {
	fmt.Println("AlexNet global-memory trace replayed through candidate L1 geometries:")
	fmt.Printf("%-22s %12s %10s %10s %10s\n", "L1 geometry", "accesses", "L1 hit%", "L2 hit%", "dropped")
	for _, g := range []struct {
		name  string
		lines int
		ways  int
	}{
		{"8 KiB direct-mapped", 64, 1},
		{"16 KiB 2-way", 128, 2},
		{"32 KiB 4-way", 256, 4},
		{"64 KiB 8-way", 512, 8},
	} {
		cfg := cachesim.DefaultConfig()
		cfg.L1Lines, cfg.L1Ways = g.lines, g.ways
		st := replay(cfg)
		l2rate := 0.0
		if st.L1Misses > 0 {
			l2rate = 100 * float64(st.L2Hits) / float64(st.L1Misses)
		}
		fmt.Printf("%-22s %12d %9.1f%% %9.1f%% %10d\n",
			g.name, st.Accesses, 100*st.L1HitRate(), l2rate, st.Dropped)
	}
	fmt.Println("\nthe trace includes every access issued inside the binary-only")
	fmt.Println("accelerated library; a compile-time tool could not collect it.")
}
