// Kernel sampling (paper Section 6.2): builds an instruction histogram of a
// SpecAccel benchmark twice — with full instrumentation and with
// grid-dimension kernel sampling (instrumented code runs once per unique
// (kernel, grid) pair; nvbit_enable_instrumented switches versions) — and
// reports the slowdown each approach costs and the sampling error.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"math"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

func run(b *specaccel.Benchmark, mode string) (map[string]uint64, uint64) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	var tool *ophisto.Tool
	var nv *nvbit.NVBit
	if mode != "native" {
		tool = ophisto.New(mode == "sampled")
		if nv, err = nvbit.Attach(api, tool); err != nil {
			log.Fatal(err)
		}
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Run(ctx, specaccel.Medium); err != nil {
		log.Fatal(err)
	}
	var counts map[string]uint64
	if tool != nil {
		counts = tool.Counts(nv)
	}
	return counts, api.Device().Stats().Cycles
}

func main() {
	var bench *specaccel.Benchmark
	for _, b := range specaccel.Benchmarks() {
		if b.Name == "clvrleaf" {
			bench = b
		}
	}

	_, nativeCycles := run(bench, "native")
	exact, fullCycles := run(bench, "full")
	est, sampledCycles := run(bench, "sampled")

	fmt.Printf("benchmark %s (medium): native %d cycles\n", bench.Name, nativeCycles)
	fmt.Printf("full instrumentation: %5.1fx slowdown\n", float64(fullCycles)/float64(nativeCycles))
	fmt.Printf("kernel sampling:      %5.1fx slowdown\n", float64(sampledCycles)/float64(nativeCycles))

	fmt.Println("\ntop-5 executed instructions (exact vs sampled estimate):")
	var total uint64
	for _, v := range exact {
		total += v
	}
	shown := 0
	for _, e := range topOf(exact) {
		if shown == 5 {
			break
		}
		shown++
		err := 100 * math.Abs(float64(est[e.op])-float64(e.count)) / float64(e.count)
		fmt.Printf("  %-8s %5.1f%% of instructions, sampling error %.3f%%\n",
			e.op, 100*float64(e.count)/float64(total), err)
	}
}

type entry struct {
	op    string
	count uint64
}

func topOf(m map[string]uint64) []entry {
	out := make([]entry, 0, len(m))
	for k, v := range m {
		out = append(out, entry{k, v})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].count > out[i].count {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
