// Memory access address divergence (paper Section 6.1 / Listing 8): runs an
// ML workload that spends most of its instructions inside the binary-only
// accelerated library, and measures the average number of unique cache lines
// each warp-level global memory instruction requests — first with full
// library visibility (NVBit's advantage), then with libraries excluded (what
// a compiler-based tool would see).
//
//	go run ./examples/memdivergence
package main

import (
	"fmt"
	"log"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/memdiv"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/nvbit"
)

func measure(net mlsuite.Network, skipLibs bool) float64 {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	tool := memdiv.New()
	tool.SkipLibraries = skipLibs
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlsuite.Run(ctx, nil, net); err != nil {
		log.Fatal(err)
	}
	return tool.AvgLinesPerMemInstr(nv)
}

func libFraction(net mlsuite.Network) float64 {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	tool := instrcount.New()
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mlsuite.Run(ctx, nil, net); err != nil {
		log.Fatal(err)
	}
	return tool.LibraryFraction(nv)
}

func main() {
	fmt.Printf("%-10s %10s %14s %14s\n", "network", "lib-instr%", "lines (full)", "lines (no-lib)")
	for _, net := range mlsuite.Networks() {
		full := measure(net, false)
		nolib := measure(net, true)
		frac := libFraction(net)
		fmt.Printf("%-10s %9.1f%% %14.2f %14.2f\n", net.Name, 100*frac, full, nolib)
	}
	fmt.Println("\nexcluding the precompiled libraries (a compiler-based tool's view)")
	fmt.Println("overestimates memory divergence: only the unoptimized app-side")
	fmt.Println("kernels remain visible.")
}
