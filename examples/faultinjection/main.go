// Fault-injection sweep — the SASSIFI/NVBitFI-style resilience study the
// paper cites as an NVBit use case. The victim kernel is first profiled to
// count its dynamic thread-instruction population; then every dynamic
// instruction is injected with a single-bit flip in its destination register
// (after the instruction executes, through the NVBit device API) and the
// run's outcome is classified the way resilience studies do:
//
//	masked  — output identical to the golden run (the fault was benign)
//	SDC     — silent data corruption (wrong output, no error)
//	DUE     — detected unrecoverable error (the launch trapped)
//
// The statistical version of this sweep — seeded sampling over a large
// space, worker pools, resumable state — lives in internal/campaign; this
// example shows the per-injection machinery on an exhaustively small victim.
//
//	go run ./examples/faultinjection
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/faultinject"
	"nvbitgo/nvbit"
)

// The victim kernel: a tiny computation whose address arithmetic, data
// values and predicates are all fault targets. One warp keeps the dynamic
// instruction space small enough to sweep exhaustively.
const victimPTX = `
.visible .entry victim(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<6>;
	.reg .pred %p<2>;
	mov.u32 %r0, %laneid;
	ld.param.u64 %rd0, [data];
	mul.wide.u32 %rd2, %r0, 4;
	add.u64 %rd0, %rd0, %rd2;
	ld.global.u32 %r1, [%rd0];
	mul.lo.u32 %r2, %r1, 3;
	add.u32 %r2, %r2, %r0;
	ld.param.u64 %rd4, [out];
	add.u64 %rd4, %rd4, %rd2;
	st.global.u32 [%rd4], %r2;
	exit;
}
`

// run executes the victim in a fresh simulator with tool attached (nil for
// the bare golden run) and returns the output, or the launch error (a DUE).
func run(tool nvbit.Tool) (out []uint32, err error) {
	api, e := gpusim.New(gpusim.Volta)
	if e != nil {
		log.Fatal(e)
	}
	if tool != nil {
		if _, e := nvbit.Attach(api, tool,
			nvbit.WithScheduler(nvbit.SchedulerSequential)); e != nil {
			log.Fatal(e)
		}
	}
	ctx, e := api.CtxCreate()
	if e != nil {
		log.Fatal(e)
	}
	mod, e := ctx.ModuleLoadPTX("victim", victimPTX)
	if e != nil {
		log.Fatal(e)
	}
	f, e := mod.GetFunction("victim")
	if e != nil {
		log.Fatal(e)
	}
	data, _ := ctx.MemAlloc(4 * 32)
	res, _ := ctx.MemAlloc(4 * 32)
	host := make([]byte, 4*32)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], uint32(i*5+1))
	}
	if e := ctx.MemcpyHtoD(data, host); e != nil {
		log.Fatal(e)
	}
	params, _ := gpusim.PackParams(f, data, res)
	if err = ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(32), 0, params); err != nil {
		return nil, err // DUE
	}
	if e := ctx.MemcpyDtoH(host, res); e != nil {
		log.Fatal(e)
	}
	out = make([]uint32, 32)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(host[4*i:])
	}
	return out, nil
}

func same(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	golden, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}

	// Profile pass: count the dynamic thread-instruction population.
	prof := faultinject.NewProfiler()
	if _, err := run(prof); err != nil {
		log.Fatal(err)
	}
	counts, err := prof.Counts()
	if err != nil {
		log.Fatal(err)
	}
	var space uint64
	for _, kc := range counts {
		space += kc.Counts[faultinject.GroupAll]
	}

	// The kernel is one warp, so with the sequential scheduler the dynamic
	// order is 32 lanes per eligible instruction: target site*32+5 hits
	// lane 5 of each static site. Sweeping one lane per site keeps the
	// exhaustive table readable; the full space would be 3x32 larger.
	const lane = 5
	sites := space / 32
	var masked, sdc, due int
	fmt.Printf("sweep: %d eligible sites (of %d dynamic instructions) x 3 bits, lane %d\n\n",
		sites, space, lane)
	fmt.Printf("%-7s %-5s %-4s %-8s %s\n", "target", "site", "bit", "outcome", "corruption")
	for site := uint64(0); site < sites; site++ {
		target := site*32 + lane
		for _, bit := range []uint{0, 15, 31} {
			tool := faultinject.New(faultinject.Injection{
				Group:  faultinject.GroupAll,
				Target: target,
				Model:  faultinject.ModelFlip,
				Bit:    bit,
			})
			faulty, err := run(tool)
			var outcome string
			switch {
			case err != nil:
				outcome = "DUE"
				due++
			case same(golden, faulty):
				outcome = "masked"
				masked++
			default:
				outcome = "SDC"
				sdc++
			}
			detail := ""
			if r, rerr := tool.Result(); rerr == nil && r.Fired {
				detail = fmt.Sprintf("%#08x -> %#08x", r.Old, r.New)
				fmt.Printf("%-7d %-5d %-4d %-8s %s\n", target, r.Site, bit, outcome, detail)
			} else {
				fmt.Printf("%-7d %-5s %-4d %-8s\n", target, "?", bit, outcome)
			}
		}
	}
	total := masked + sdc + due
	fmt.Printf("\n%d injections: %d masked (%.0f%%), %d SDC (%.0f%%), %d DUE (%.0f%%)\n",
		total, masked, 100*float64(masked)/float64(total),
		sdc, 100*float64(sdc)/float64(total),
		due, 100*float64(due)/float64(total))
	fmt.Println("\nfaults in address arithmetic tend to trap (DUE), faults in data")
	fmt.Println("values corrupt silently (SDC), and faults in dead registers mask.")
}
