// Fault-injection campaign — the SASSIFI-style resilience study the paper
// cites as an NVBit use case. For every eligible static instruction of a
// small kernel, a single-bit transient fault is injected into its
// destination register (in one lane, after the instruction executes, through
// the NVBit device API) and the run's outcome is classified the way
// resilience studies do:
//
//	masked  — output identical to the golden run (the fault was benign)
//	SDC     — silent data corruption (wrong output, no error)
//	DUE     — detected unrecoverable error (the launch trapped)
//
//	go run ./examples/faultinjection
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/faultinject"
	"nvbitgo/nvbit"
)

// The victim kernel: a tiny dot-product-like computation whose address
// arithmetic, data values and predicates are all fault targets.
const victimPTX = `
.visible .entry victim(.param .u64 data, .param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<6>;
	.reg .pred %p<2>;
	mov.u32 %r0, %laneid;
	ld.param.u64 %rd0, [data];
	mul.wide.u32 %rd2, %r0, 4;
	add.u64 %rd0, %rd0, %rd2;
	ld.global.u32 %r1, [%rd0];
	mul.lo.u32 %r2, %r1, 3;
	add.u32 %r2, %r2, %r0;
	ld.param.u64 %rd4, [out];
	add.u64 %rd4, %rd4, %rd2;
	st.global.u32 [%rd4], %r2;
	exit;
}
`

func run(site *faultinject.Site) (out []uint32, err error) {
	api, e := gpusim.New(gpusim.Volta)
	if e != nil {
		log.Fatal(e)
	}
	if site != nil {
		if _, e := nvbit.Attach(api, faultinject.New(*site)); e != nil {
			log.Fatal(e)
		}
	}
	ctx, e := api.CtxCreate()
	if e != nil {
		log.Fatal(e)
	}
	mod, e := ctx.ModuleLoadPTX("victim", victimPTX)
	if e != nil {
		log.Fatal(e)
	}
	f, e := mod.GetFunction("victim")
	if e != nil {
		log.Fatal(e)
	}
	data, _ := ctx.MemAlloc(4 * 32)
	res, _ := ctx.MemAlloc(4 * 32)
	host := make([]byte, 4*32)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], uint32(i*5+1))
	}
	if e := ctx.MemcpyHtoD(data, host); e != nil {
		log.Fatal(e)
	}
	params, _ := gpusim.PackParams(f, data, res)
	if err = ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(32), 0, params); err != nil {
		return nil, err // DUE
	}
	if e := ctx.MemcpyDtoH(host, res); e != nil {
		log.Fatal(e)
	}
	out = make([]uint32, 32)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(host[4*i:])
	}
	return out, nil
}

func same(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func main() {
	golden, err := run(nil)
	if err != nil {
		log.Fatal(err)
	}

	// Count the campaign space once.
	api, _ := gpusim.New(gpusim.Volta)
	probe := faultinject.New(faultinject.Site{InstIdx: 1 << 30})
	nv, _ := nvbit.Attach(api, probe)
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadPTX("victim", victimPTX)
	if err != nil {
		log.Fatal(err)
	}
	f, _ := mod.GetFunction("victim")
	sites, err := faultinject.EligibleSites(nv, f)
	if err != nil {
		log.Fatal(err)
	}

	var masked, sdc, due int
	fmt.Printf("campaign: %d eligible sites x 3 bits x lane 5\n\n", sites)
	fmt.Printf("%-5s %-4s %-8s\n", "site", "bit", "outcome")
	for site := 0; site < sites; site++ {
		for _, bit := range []uint{0, 15, 31} {
			faulty, err := run(&faultinject.Site{InstIdx: site, Lane: 5, Bit: bit})
			var outcome string
			switch {
			case err != nil:
				outcome = "DUE"
				due++
			case same(golden, faulty):
				outcome = "masked"
				masked++
			default:
				outcome = "SDC"
				sdc++
			}
			fmt.Printf("%-5d %-4d %-8s\n", site, bit, outcome)
		}
	}
	total := masked + sdc + due
	fmt.Printf("\n%d injections: %d masked (%.0f%%), %d SDC (%.0f%%), %d DUE (%.0f%%)\n",
		total, masked, 100*float64(masked)/float64(total),
		sdc, 100*float64(sdc)/float64(total),
		due, 100*float64(due)/float64(total))
	fmt.Println("\nfaults in address arithmetic tend to trap (DUE), faults in data")
	fmt.Println("values corrupt silently (SDC), and faults in dead registers mask.")
}
