// Device-memory checking with dynamic binary instrumentation — the
// compute-sanitizer/cuda-memcheck use case. The simulated hardware only
// traps accesses that leave the device heap entirely; an off-by-one overrun
// into the allocator's free space or a read through a stale pointer executes
// silently. The memcheck tool instruments every global load and store,
// collects the effective lane addresses into a device-resident ring buffer,
// and validates them against the driver's allocation table at each launch
// exit — catching exactly the bugs the hardware cannot.
//
//	go run ./examples/memcheck
package main

import (
	"fmt"
	"log"
	"os"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/memcheck"
	"nvbitgo/nvbit"
)

// copyKernel copies n 4-byte elements from src to dst, one per thread. The
// bug is in the launch geometry, not the kernel: launching more threads than
// elements overruns both buffers.
const copyKernel = `
.visible .entry copy(.param .u64 src, .param .u64 dst)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	mov.u32 %r4, %ctaid.x;
	mov.u32 %r5, %ntid.x;
	mov.u32 %r6, %tid.x;
	mad.lo.u32 %r0, %r4, %r5, %r6;
	shl.b32 %r1, %r0, 2;
	cvt.u64.u32 %rd4, %r1;
	ld.param.u64 %rd0, [src];
	add.u64 %rd0, %rd0, %rd4;
	ld.param.u64 %rd2, [dst];
	add.u64 %rd2, %rd2, %rd4;
	ld.global.u32 %r3, [%rd0];
	st.global.u32 [%rd2], %r3;
	exit;
}
`

func main() {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	tool := memcheck.New(1 << 18)
	if _, err := nvbit.Attach(api, tool); err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("app", copyKernel)
	if err != nil {
		log.Fatal(err)
	}
	f, err := mod.GetFunction("copy")
	if err != nil {
		log.Fatal(err)
	}

	const elems = 192 // 768 bytes per buffer
	src, err := ctx.MemAlloc(elems * 4)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := ctx.MemAlloc(elems * 4)
	if err != nil {
		log.Fatal(err)
	}
	launch := func(label string, s, d uint64, threads int) {
		params, err := gpusim.PackParams(f, s, d)
		if err != nil {
			log.Fatal(err)
		}
		if err := ctx.LaunchKernel(f, gpusim.D1(threads/32), gpusim.D1(32), 0, params); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %d accesses checked, %d violations so far\n",
			label, tool.Checked, tool.TotalViolations)
	}

	// A correct launch: every lane stays inside its buffer.
	launch("clean copy:", src, dst, elems)

	// Bug 1 — overrun: one CTA too many. The extra 32 lanes read and write
	// past both buffers; the hardware executes all of it without trapping.
	launch("overrun (1 extra CTA):", src, dst, elems+32)

	// Bug 2 — use-after-free: the destination is freed, but a stale pointer
	// to it is used again. The bytes are still in the heap, so only the
	// allocation table knows they are dead.
	if err := ctx.MemFree(dst); err != nil {
		log.Fatal(err)
	}
	launch("use-after-free:", src, dst, elems)

	fmt.Println()
	tool.Report(os.Stdout)
	fmt.Println("\nthe hardware trapped none of these: every address stayed inside")
	fmt.Println("the device heap. only the allocation table can tell them apart.")
}
