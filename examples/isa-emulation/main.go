// Instruction emulation (paper Section 6.3): an application uses the
// hypothetical warp-wide FFT instruction WFFT32 through a proxy in its PTX.
// No device implements it — the NVBit emulation tool removes each WFFT32 and
// injects a functionally equivalent shuffle-based device function that reads
// and writes the interrupted thread's registers through the device API.
// Architects can thus run (and trace) ISA extensions before silicon exists.
//
//	go run ./examples/isa-emulation
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/emu"
	"nvbitgo/nvbit"
)

const fftPTX = `
.visible .entry fft32(.param .u64 re, .param .u64 im)
{
	.reg .u32 %r<4>;
	.reg .f32 %f<4>;
	.reg .u64 %rd<6>;
	mov.u32 %r0, %laneid;
	ld.param.u64 %rd0, [re];
	ld.param.u64 %rd2, [im];
	mul.wide.u32 %rd4, %r0, 4;
	add.u64 %rd0, %rd0, %rd4;
	add.u64 %rd2, %rd2, %rd4;
	ld.global.f32 %f0, [%rd0];
	ld.global.f32 %f1, [%rd2];
	wfft32.f32 %f0, %f1;       // hypothetical instruction
	st.global.f32 [%rd0], %f0;
	st.global.f32 [%rd2], %f1;
	exit;
}
`

func main() {
	api, err := gpusim.New(gpusim.Volta) // no native WFFT32 on this device
	if err != nil {
		log.Fatal(err)
	}
	tool := emu.New()
	if _, err := nvbit.Attach(api, tool); err != nil {
		log.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("fft", fftPTX)
	if err != nil {
		log.Fatal(err)
	}
	f, err := mod.GetFunction("fft32")
	if err != nil {
		log.Fatal(err)
	}

	// Input: a 3-cycles-per-window complex tone; its FFT is a single
	// spike at bin 3.
	re, _ := ctx.MemAlloc(4 * 32)
	im, _ := ctx.MemAlloc(4 * 32)
	reb := make([]byte, 4*32)
	imb := make([]byte, 4*32)
	for i := 0; i < 32; i++ {
		ang := 2 * math.Pi * 3 * float64(i) / 32
		binary.LittleEndian.PutUint32(reb[4*i:], math.Float32bits(float32(math.Cos(ang))))
		binary.LittleEndian.PutUint32(imb[4*i:], math.Float32bits(float32(math.Sin(ang))))
	}
	if err := ctx.MemcpyHtoD(re, reb); err != nil {
		log.Fatal(err)
	}
	if err := ctx.MemcpyHtoD(im, imb); err != nil {
		log.Fatal(err)
	}
	params, _ := gpusim.PackParams(f, re, im)
	if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(32), 0, params); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulated %d WFFT32 site(s)\n", tool.Sites)

	if err := ctx.MemcpyDtoH(reb, re); err != nil {
		log.Fatal(err)
	}
	if err := ctx.MemcpyDtoH(imb, im); err != nil {
		log.Fatal(err)
	}
	fmt.Println("FFT magnitude by bin (expect a spike of 32 at bin 3):")
	for i := 0; i < 32; i++ {
		r := float64(math.Float32frombits(binary.LittleEndian.Uint32(reb[4*i:])))
		g := float64(math.Float32frombits(binary.LittleEndian.Uint32(imb[4*i:])))
		mag := math.Hypot(r, g)
		bar := ""
		for j := 0; j < int(mag); j++ {
			bar += "#"
		}
		fmt.Printf("bin %2d %6.2f %s\n", i, mag, bar)
	}
}
