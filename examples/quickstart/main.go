// Quickstart: the paper's Listing 1 — a minimal NVBit tool that counts every
// thread-level instruction a CUDA application executes, attached to a saxpy
// application running on the simulated GPU stack.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"nvbitgo/gpusim"
	"nvbitgo/nvbit"
)

// The application: plain saxpy, shipped as embedded PTX and JIT-compiled by
// the driver — the tool never sees its source.
const saxpyPTX = `
.visible .entry saxpy(.param .u64 x, .param .u64 y, .param .f32 a, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<6>;
	.reg .f32 %f<4>;
	.reg .pred %p<2>;
	mov.u32 %r0, %ctaid.x;
	mov.u32 %r1, %ntid.x;
	mov.u32 %r2, %tid.x;
	mad.lo.u32 %r3, %r0, %r1, %r2;
	ld.param.u32 %r4, [n];
	setp.ge.u32 %p0, %r3, %r4;
	@%p0 exit;
	ld.param.u64 %rd0, [x];
	ld.param.u64 %rd2, [y];
	mul.wide.u32 %rd4, %r3, 4;
	add.u64 %rd0, %rd0, %rd4;
	add.u64 %rd2, %rd2, %rd4;
	ld.global.f32 %f0, [%rd0];
	ld.global.f32 %f1, [%rd2];
	ld.param.f32 %f2, [a];
	fma.rn.f32 %f1, %f2, %f0, %f1;
	st.global.f32 [%rd2], %f1;
	exit;
}
`

// The tool's device function (the .cu file of Listing 1): one atomic bump
// per thread, compiled by the tool chain and injected before every
// instruction at run time.
const countInstrsPTX = `
.toolfunc count_instrs(.param .u64 counter)
{
	.reg .u64 %rd<4>;
	ld.param.u64 %rd0, [counter];
	mov.u64 %rd2, 1;
	red.global.add.u64 [%rd0], %rd2;
	ret;
}
`

// instrCounter is the host side of the tool (Listing 1's callbacks).
type instrCounter struct {
	counter uint64
}

func (t *instrCounter) AtInit(n *nvbit.NVBit) {
	if err := n.RegisterToolPTX(countInstrsPTX); err != nil {
		log.Fatal(err)
	}
	var err error
	if t.counter, err = n.Malloc(8); err != nil {
		log.Fatal(err)
	}
}

func (t *instrCounter) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	f := p.Launch.Func
	if n.IsInstrumented(f) {
		return // already instrumented (Listing 1, line 28)
	}
	insts, err := n.GetInstrs(f)
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range insts {
		n.InsertCallArgs(i, "count_instrs", nvbit.IPointBefore, nvbit.ArgConst64(t.counter))
	}
	fmt.Printf("[tool] instrumented %s: %d instructions\n", f.Name, len(insts))
}

func (t *instrCounter) AtTerm(n *nvbit.NVBit) {
	total, err := n.ReadU64(t.counter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[tool] total thread-level instructions: %d\n", total)
}

func main() {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		log.Fatal(err)
	}
	// The LD_PRELOAD moment: inject the tool into the application. Attach
	// options configure the run — here, CUPTI-style activity tracing (see
	// docs/observability.md).
	nv, err := nvbit.Attach(api, &instrCounter{}, nvbit.WithTracing(0))
	if err != nil {
		log.Fatal(err)
	}

	// From here on: an ordinary CUDA application, unaware of the tool.
	ctx, err := api.CtxCreate()
	if err != nil {
		log.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("saxpy", saxpyPTX)
	if err != nil {
		log.Fatal(err)
	}
	f, err := mod.GetFunction("saxpy")
	if err != nil {
		log.Fatal(err)
	}
	const n = 4096
	x, _ := ctx.MemAlloc(4 * n)
	y, _ := ctx.MemAlloc(4 * n)
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)))
	}
	if err := ctx.MemcpyHtoD(x, host); err != nil {
		log.Fatal(err)
	}
	if err := ctx.MemcpyHtoD(y, host); err != nil {
		log.Fatal(err)
	}
	params, err := gpusim.PackParams(f, x, y, float32(2.0), uint32(n))
	if err != nil {
		log.Fatal(err)
	}
	for launch := 0; launch < 4; launch++ {
		if err := ctx.LaunchKernel(f, gpusim.D1(n/256), gpusim.D1(256), 0, params); err != nil {
			log.Fatal(err)
		}
	}
	if err := ctx.MemcpyDtoH(host, y); err != nil {
		log.Fatal(err)
	}
	got := math.Float32frombits(binary.LittleEndian.Uint32(host[4*100:]))
	fmt.Printf("[app] y[100] = %v (want %v)\n", got, float32(100)*(1+2+2+2+2))
	api.Close() // fires the tool's AtTerm

	// The activity timeline collected by WithTracing: per-kernel metrics
	// (Figures 7–8 shape) and, if desired, a chrome://tracing export via
	// nvbit.WriteChromeTrace.
	fmt.Print(nvbit.FormatMetrics(nv.Profiler().Metrics()))
}
