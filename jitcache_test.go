package main_test

import (
	"bytes"
	"sync"
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/nvbit"
)

// The instrumentation cache is a pure performance optimization, so it rides
// the same end-to-end guarantee as the liveness save sets: for every in-tree
// tool and both schedulers, the tool's report must be byte-identical whether
// the code was freshly generated (uncached), generated into a cold cache, or
// materialized from a warm one. The warm run uses a *fresh* cache instance
// over the same directory, so its hits come from the persistent disk tier —
// exactly what a second process sees.

func newCache(t *testing.T, dir string) *nvbit.JITCache {
	t.Helper()
	c, err := nvbit.NewJITCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDifferentialJITCache: uncached vs cold-cached vs warm-cached output for
// all six tools under both schedulers.
func TestDifferentialJITCache(t *testing.T) {
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	for toolName := range diffTools {
		for schedName, sched := range scheds {
			toolName, schedName, sched := toolName, schedName, sched
			t.Run(toolName+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				uncached, _ := diffRun(t, toolName, nvbit.InjectTrampoline, sched)
				cold, _ := diffRun(t, toolName, nvbit.InjectTrampoline, sched, nvbit.WithJITCache(newCache(t, dir)))
				warm, _ := diffRun(t, toolName, nvbit.InjectTrampoline, sched, nvbit.WithJITCache(newCache(t, dir)))
				if uncached == "" {
					t.Fatal("empty report")
				}
				if cold != uncached {
					t.Errorf("cold-cached output diverges from uncached:\nuncached:\n%s\ncold:\n%s", uncached, cold)
				}
				if warm != uncached {
					t.Errorf("warm-cached output diverges from uncached:\nuncached:\n%s\nwarm:\n%s", uncached, warm)
				}
			})
		}
	}
}

// TestJITCacheConcurrentAttaches races N simultaneous attaches — each with
// its own device and framework instance — against one shared cache, under
// both schedulers. Singleflight must coalesce the racing JITs so each unique
// object (one lift, one code) is generated exactly once, and every attach
// must end up with the same instruction count and byte-identical device code.
// The root package runs under -race in CI, which is the point.
func TestJITCacheConcurrentAttaches(t *testing.T) {
	const attaches = 8
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	for schedName, sched := range scheds {
		schedName, sched := schedName, sched
		t.Run(schedName, func(t *testing.T) {
			cache := newCache(t, "") // memory-only: all sharing is in-process
			counts := make([]uint64, attaches)
			codes := make([][]byte, attaches)
			errs := make([]error, attaches)
			var wg sync.WaitGroup
			for g := 0; g < attaches; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					api, err := gpusim.New(gpusim.Volta)
					if err != nil {
						errs[g] = err
						return
					}
					tool := &quickCounter{}
					nv, err := nvbit.Attach(api, tool,
						nvbit.WithScheduler(sched), nvbit.WithJITCache(cache))
					if err != nil {
						errs[g] = err
						return
					}
					ctx, err := api.CtxCreate()
					if err != nil {
						errs[g] = err
						return
					}
					mod, err := ctx.ModuleLoadPTX("saxpy", quickSaxpyPTX)
					if err != nil {
						errs[g] = err
						return
					}
					f, err := mod.GetFunction("saxpy")
					if err != nil {
						errs[g] = err
						return
					}
					const n = 1024
					x, _ := ctx.MemAlloc(4 * n)
					y, _ := ctx.MemAlloc(4 * n)
					params, err := gpusim.PackParams(f, x, y, float32(2.0), uint32(n))
					if err != nil {
						errs[g] = err
						return
					}
					if err := ctx.LaunchKernel(f, gpusim.D1(n/256), gpusim.D1(256), 0, params); err != nil {
						errs[g] = err
						return
					}
					counts[g], err = nv.ReadU64(tool.counter)
					if err != nil {
						errs[g] = err
						return
					}
					// The instrumented body (with its trampoline jumps) as
					// resident on this attach's device.
					codes[g], errs[g] = api.Device().ReadCode(f.Addr, f.NumWords)
				}()
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("attach %d: %v", g, err)
				}
			}
			for g := 1; g < attaches; g++ {
				if counts[g] != counts[0] {
					t.Errorf("attach %d counted %d instructions, attach 0 counted %d", g, counts[g], counts[0])
				}
				if !bytes.Equal(codes[g], codes[0]) {
					t.Errorf("attach %d has different instrumented code bytes than attach 0", g)
				}
			}
			if counts[0] == 0 {
				t.Fatal("no instructions counted")
			}
			st := cache.Stats()
			// One unique function → one lift object + one code object; the
			// other 2*attaches-2 lookups hit or coalesce, never regenerate.
			if st.Generations != 2 {
				t.Errorf("cache generated %d objects for one unique function, want 2 (stats %+v)", st.Generations, st)
			}
			if got := st.MemHits + st.DiskHits + st.Coalesced; got != 2*attaches-2 {
				t.Errorf("hits+coalesced = %d, want %d (stats %+v)", got, 2*attaches-2, st)
			}
		})
	}
}
