module nvbitgo

go 1.22
