package gpusim_test

import (
	"encoding/binary"
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/nvbit"
)

const incPTX = `
.visible .entry inc(.param .u64 buf, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	mov.u32 %r0, %ctaid.x;
	mov.u32 %r1, %ntid.x;
	mov.u32 %r2, %tid.x;
	mad.lo.u32 %r3, %r0, %r1, %r2;
	ld.param.u32 %r4, [n];
	setp.ge.u32 %p0, %r3, %r4;
	@%p0 exit;
	ld.param.u64 %rd0, [buf];
	mul.wide.u32 %rd2, %r3, 4;
	add.u64 %rd0, %rd0, %rd2;
	ld.global.u32 %r5, [%rd0];
	add.u32 %r5, %r5, 1;
	st.global.u32 [%rd0], %r5;
	exit;
}
`

// TestPublicAPIEndToEnd is the application-facing happy path a downstream
// user follows: device, context, JIT module, memory, launch, readback.
func TestPublicAPIEndToEnd(t *testing.T) {
	for _, fam := range []gpusim.Family{gpusim.Kepler, gpusim.Maxwell, gpusim.Pascal, gpusim.Volta} {
		api, err := gpusim.New(fam)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := api.CtxCreate()
		if err != nil {
			t.Fatal(err)
		}
		mod, err := ctx.ModuleLoadPTX("inc", incPTX)
		if err != nil {
			t.Fatal(err)
		}
		f, err := mod.GetFunction("inc")
		if err != nil {
			t.Fatal(err)
		}
		const n = 100
		buf, err := ctx.MemAlloc(4 * n)
		if err != nil {
			t.Fatal(err)
		}
		params, err := gpusim.PackParams(f, buf, uint32(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(128), 0, params); err != nil {
			t.Fatal(err)
		}
		host := make([]byte, 4*n)
		if err := ctx.MemcpyDtoH(host, buf); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := binary.LittleEndian.Uint32(host[4*i:]); got != 1 {
				t.Fatalf("%v: buf[%d] = %d, want 1", fam, i, got)
			}
		}
		api.Close()
	}
}

func TestCompileToCubinAndLoad(t *testing.T) {
	img, err := gpusim.CompileToCubin("lib", incPTX, gpusim.Pascal, true)
	if err != nil {
		t.Fatal(err)
	}
	api, err := gpusim.New(gpusim.Pascal)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadCubin(img)
	if err != nil {
		t.Fatal(err)
	}
	if !mod.FromCubin {
		t.Fatal("cubin module not marked binary-only")
	}
	if _, err := mod.GetFunction("inc"); err != nil {
		t.Fatal(err)
	}
	if _, err := gpusim.CompileToCubin("bad", "garbage", gpusim.Volta, false); err == nil {
		t.Fatal("bad PTX accepted")
	}
}

// TestSchedulersAgreeUnderInstrumentation runs a JIT-compiled, fully
// instrumented multi-CTA kernel (real NVBit trampolines) under both
// schedulers and checks that the injected instruction counter and the
// application's memory agree — instrumentation results are
// scheduler-invariant.
func TestSchedulersAgreeUnderInstrumentation(t *testing.T) {
	const n = 1024
	run := func(kind gpusim.SchedulerKind) (uint64, []byte) {
		cfg := gpusim.DefaultConfig(gpusim.Volta)
		cfg.Scheduler = kind
		api, err := gpusim.NewWithConfig(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tool := instrcount.New()
		nv, err := nvbit.Attach(api, tool)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := api.CtxCreate()
		if err != nil {
			t.Fatal(err)
		}
		mod, err := ctx.ModuleLoadPTX("inc", incPTX)
		if err != nil {
			t.Fatal(err)
		}
		f, err := mod.GetFunction("inc")
		if err != nil {
			t.Fatal(err)
		}
		buf, err := ctx.MemAlloc(4 * n)
		if err != nil {
			t.Fatal(err)
		}
		params, err := gpusim.PackParams(f, buf, uint32(n))
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchKernel(f, gpusim.D1(16), gpusim.D1(128), 0, params); err != nil {
			t.Fatal(err)
		}
		host := make([]byte, 4*n)
		if err := ctx.MemcpyDtoH(host, buf); err != nil {
			t.Fatal(err)
		}
		return tool.Total(nv), host
	}

	seqCount, seqMem := run(gpusim.SchedulerSequential)
	if seqCount == 0 {
		t.Fatal("instrumentation counted nothing")
	}
	for i := 0; i < 2; i++ {
		parCount, parMem := run(gpusim.SchedulerParallelSM)
		if parCount != seqCount {
			t.Fatalf("instrumented instruction count: parallel %d, sequential %d", parCount, seqCount)
		}
		if string(parMem) != string(seqMem) {
			t.Fatal("application memory differs across schedulers")
		}
	}
}

func TestConfigKnobs(t *testing.T) {
	cfg := gpusim.DefaultConfig(gpusim.Volta)
	cfg.NumSMs = 2
	cfg.EnableWFFT = true
	api, err := gpusim.NewWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := api.Device().Config().NumSMs; got != 2 {
		t.Fatalf("NumSMs = %d", got)
	}
	if !api.Device().Config().EnableWFFT {
		t.Fatal("EnableWFFT lost")
	}
}
