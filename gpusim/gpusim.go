// Package gpusim is the application-facing public API of the simulated GPU
// stack: it is what a CUDA application would link against. It wraps the
// simulated device, the CUDA-driver analog, the PTX JIT path, and the cubin
// loader behind a small surface.
//
// Typical use:
//
//	sim, _ := gpusim.New(gpusim.Volta)
//	ctx, _ := sim.CtxCreate()
//	mod, _ := ctx.ModuleLoadPTX("app", ptxSource)
//	fn, _ := mod.GetFunction("kernel")
//	buf, _ := ctx.MemAlloc(1 << 20)
//	params, _ := gpusim.PackParams(fn, buf, uint32(n))
//	ctx.LaunchKernel(fn, gpusim.D1(blocks), gpusim.D1(256), 0, params)
package gpusim

import (
	"nvbitgo/internal/driver"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/ptx"
	"nvbitgo/internal/sass"
)

// Architecture families.
const (
	Kepler  = sass.Kepler
	Maxwell = sass.Maxwell
	Pascal  = sass.Pascal
	Volta   = sass.Volta
)

// Scheduler kinds for Config.Scheduler: sequential is the deterministic
// reference backend, parallel runs one worker goroutine per SM (see
// docs/scheduler.md for the determinism contract).
const (
	SchedulerSequential = gpu.SchedulerSequential
	SchedulerParallelSM = gpu.SchedulerParallelSM
)

// ParseScheduler maps a command-line name ("sequential", "parallel") to a
// SchedulerKind.
var ParseScheduler = gpu.ParseScheduler

// Re-exported stack types.
type (
	// Family is a GPU architecture family.
	Family = sass.Family
	// SchedulerKind selects the CTA execution backend.
	SchedulerKind = gpu.SchedulerKind
	// Config describes the simulated device.
	Config = gpu.Config
	// Stats are device execution statistics.
	Stats = gpu.Stats
	// Dim3 is a CUDA-style extent.
	Dim3 = gpu.Dim3
	// API is the driver instance.
	API = driver.API
	// Context is the CUcontext analog.
	Context = driver.Context
	// Module is the CUmodule analog.
	Module = driver.Module
	// Function is the CUfunction analog.
	Function = driver.Function
)

// New creates a driver on a default-configured device of the given family.
func New(f Family) (*API, error) { return driver.New(gpu.DefaultConfig(f)) }

// NewWithConfig creates a driver on a custom-configured device.
func NewWithConfig(cfg Config) (*API, error) { return driver.New(cfg) }

// DefaultConfig returns the default device configuration for a family.
func DefaultConfig(f Family) Config { return gpu.DefaultConfig(f) }

// D1 builds a one-dimensional extent.
func D1(n int) Dim3 { return gpu.D1(n) }

// PackParams marshals typed kernel arguments into a raw parameter block.
var PackParams = driver.PackParams

// CompileToCubin compiles PTX source ahead of time (the ptxas path) and
// serializes it into a device binary for the family. Setting strip drops
// line information, like building without -lineinfo. This is how the
// reproduction's "precompiled accelerated library" ships binary-only
// kernels.
func CompileToCubin(name, src string, f Family, strip bool) ([]byte, error) {
	m, err := ptx.Compile(name, src, f)
	if err != nil {
		return nil, err
	}
	return driver.BuildCubin(m, strip)
}
