package nvbit_test

import (
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/nvbit"
)

const appPTX = `
.visible .entry twiddle(.param .u64 buf)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	mov.u32 %r0, %laneid;
	ld.param.u64 %rd0, [buf];
	mul.wide.u32 %rd2, %r0, 4;
	add.u64 %rd0, %rd0, %rd2;
	ld.global.u32 %r1, [%rd0];
	add.u32 %r1, %r1, %r0;
	st.global.u32 [%rd0], %r1;
	exit;
}
`

const toolPTX = `
.toolfunc bump(.param .u64 ctr)
{
	.reg .u64 %rd<4>;
	ld.param.u64 %rd0, [ctr];
	mov.u64 %rd2, 1;
	red.global.add.u64 [%rd0], %rd2;
	ret;
}
`

// lifecycleTool checks the full tool lifecycle through the public facade.
type lifecycleTool struct {
	ctr      uint64
	initSeen bool
	termSeen bool
	launches int
	memOps   int
}

func (t *lifecycleTool) AtInit(n *nvbit.NVBit) {
	t.initSeen = true
	if err := n.RegisterToolPTX(toolPTX); err != nil {
		panic(err)
	}
	var err error
	if t.ctr, err = n.Malloc(8); err != nil {
		panic(err)
	}
}

func (t *lifecycleTool) AtTerm(n *nvbit.NVBit) { t.termSeen = true }

func (t *lifecycleTool) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	t.launches++
	f := p.Launch.Func
	if n.IsInstrumented(f) {
		return
	}
	insts, err := n.GetInstrs(f)
	if err != nil {
		panic(err)
	}
	for _, i := range insts {
		if i.GetMemOpSpace() == nvbit.MemGlobal {
			t.memOps++
			n.InsertCallArgs(i, "bump", nvbit.IPointBefore, nvbit.ArgConst64(t.ctr))
		}
	}
}

func TestToolLifecycleThroughFacade(t *testing.T) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool := &lifecycleTool{}
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		t.Fatal(err)
	}
	if !tool.initSeen {
		t.Fatal("AtInit not fired on Attach")
	}
	if _, err := nvbit.Attach(api, tool); err == nil {
		t.Fatal("second tool injection accepted")
	}

	ctx, _ := api.CtxCreate()
	if nv.HAL() == nil || nv.HAL().ABIVersion != 2 {
		t.Fatal("HAL not initialized at context creation")
	}
	mod, err := ctx.ModuleLoadPTX("app", appPTX)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := mod.GetFunction("twiddle")
	buf, _ := ctx.MemAlloc(4 * 32)
	params, _ := gpusim.PackParams(f, buf)
	for i := 0; i < 3; i++ {
		if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(32), 0, params); err != nil {
			t.Fatal(err)
		}
	}
	api.Close()

	if !tool.termSeen {
		t.Fatal("AtTerm not fired on Close")
	}
	if tool.launches != 3 || tool.memOps != 2 {
		t.Fatalf("launches=%d memOps=%d", tool.launches, tool.memOps)
	}
	count, err := nv.ReadU64(tool.ctr)
	if err != nil {
		t.Fatal(err)
	}
	// 2 global memory instructions x 32 lanes x 3 launches.
	if count != 2*32*3 {
		t.Fatalf("counted %d, want %d", count, 2*32*3)
	}
	st := nv.JITStats()
	if st.FunctionsLifted != 1 || st.TrampolinesEmitted != 2 {
		t.Fatalf("jit stats: %+v", st)
	}
}

// liveRegsTool samples the public liveness introspection from inside the
// launch callback.
type liveRegsTool struct {
	sampled int
	exact   int
}

func (t *liveRegsTool) AtInit(n *nvbit.NVBit) {}
func (t *liveRegsTool) AtTerm(*nvbit.NVBit)   {}
func (t *liveRegsTool) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	f := p.Launch.Func
	insts, err := n.GetInstrs(f)
	if err != nil {
		panic(err)
	}
	full := nvbit.RegSet{}
	for _, i := range insts {
		rs, conservative := n.LiveRegs(i)
		t.sampled++
		if !conservative {
			t.exact++
		}
		if rs.Count() > f.MaxRegs() {
			panic("live set exceeds the function's register requirement")
		}
		full = full.Union(rs)
	}
	if full.Empty() {
		panic("no live registers anywhere")
	}
}

// TestLiveRegsThroughFacade: the per-site liveness introspection is part of
// the public API, and on a straight-line kernel it is exact, not the
// conservative fallback.
func TestLiveRegsThroughFacade(t *testing.T) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool := &liveRegsTool{}
	_, err = nvbit.Attach(api, tool)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadPTX("app", appPTX)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := mod.GetFunction("twiddle")
	buf, _ := ctx.MemAlloc(4 * 32)
	params, _ := gpusim.PackParams(f, buf)
	if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(32), 0, params); err != nil {
		t.Fatal(err)
	}
	if tool.sampled == 0 || tool.exact != tool.sampled {
		t.Fatalf("sampled %d sites, %d exact — straight-line code must not hit the conservative fallback", tool.sampled, tool.exact)
	}
}
