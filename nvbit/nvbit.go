// Package nvbit is the public user-level API of the NVBit reproduction —
// what a tool author imports to write an instrumentation tool, mirroring
// nvbit.h from the paper.
//
// A tool implements the Tool interface (the callback API of Listing 2),
// registers its device functions as PTX with RegisterToolPTX (the analog of
// compiling a .cu tool with NVCC and exporting its device functions), and is
// injected into an application's driver with Attach (the LD_PRELOAD moment).
// From its callbacks the tool uses the Inspection API (GetInstrs,
// GetBasicBlocks, GetRelatedFuncs, the Instr methods), the Instrumentation
// API (InsertCall, AddCallArg, RemoveOrig), and the Control API
// (EnableInstrumented, ResetInstrumented).
package nvbit

import (
	"nvbitgo/internal/channel"
	"nvbitgo/internal/core"
	"nvbitgo/internal/driver"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/jitcache"
	"nvbitgo/internal/profile"
	"nvbitgo/internal/sass"
)

// Core types re-exported from the framework core.
type (
	// NVBit is one attached framework instance.
	NVBit = core.NVBit
	// Tool is the interface an instrumentation tool implements.
	Tool = core.Tool
	// Instr abstracts one machine-level SASS instruction (Listing 4).
	Instr = core.Instr
	// BasicBlock is one uninterrupted instruction sequence.
	BasicBlock = core.BasicBlock
	// CallArg is one positional injected-function argument.
	CallArg = core.CallArg
	// IPoint selects before/after injection.
	IPoint = core.IPoint
	// JITStats is the JIT overhead breakdown: the paper's six Section 5.2
	// phases plus the instrumentation-cache phases (cache_lookup,
	// cache_hit) and hit/miss/byte counters.
	JITStats = core.JITStats
	// HAL is the hardware abstraction layer view.
	HAL = core.HAL
	// Option configures an Attach call (WithScheduler, WithWatchdogInterval,
	// WithTracing).
	Option = core.Option
	// LaunchDim selects one launch-configuration dimension for ArgLaunchDim.
	LaunchDim = core.LaunchDim
	// InjectionMode selects the code-generation strategy for injected calls
	// (trampoline, full-save ablation, or inline splicing).
	InjectionMode = core.InjectionMode
)

// Injection modes (WithInjectionMode, NVBit.SetInjectionMode).
const (
	// InjectTrampoline is the paper's default: per-site trampolines with
	// liveness-minimal register save sets.
	InjectTrampoline = core.InjectTrampoline
	// InjectFullSave is the ablation mode: trampolines saving the full
	// register file at every site.
	InjectFullSave = core.InjectFullSave
	// InjectInline splices tool bodies directly into the instruction stream
	// when enough dead registers exist — no save/restore, no CAL/RET —
	// falling back to trampolines otherwise.
	InjectInline = core.InjectInline
)

// ParseInjectionMode parses "trampoline", "full-save" or "inline".
var ParseInjectionMode = core.ParseInjectionMode

// Activity tracing and metrics (docs/observability.md): with
// WithTracing the framework records a CUPTI-style activity timeline —
// module loads with their JIT-phase children, memory traffic, kernel
// launches with per-SM spans, tool-callback time — retrievable through
// NVBit.Profiler.
type (
	// Profiler collects typed activity records into a bounded ring.
	Profiler = profile.Collector
	// Record is one typed activity record.
	Record = profile.Record
	// RecordKind classifies an activity record.
	RecordKind = profile.Kind
	// KernelMetrics is one kernel's aggregated launch metrics (the
	// per-kernel table behind the paper's Figures 7–8).
	KernelMetrics = profile.KernelMetrics
	// ChromeTrace is the chrome://tracing JSON document form of a record
	// timeline.
	ChromeTrace = profile.ChromeTrace
)

// Activity record kinds.
const (
	KindCtxCreate    = profile.KindCtxCreate
	KindModuleLoad   = profile.KindModuleLoad
	KindJITPhase     = profile.KindJITPhase
	KindMemAlloc     = profile.KindMemAlloc
	KindMemFree      = profile.KindMemFree
	KindMemcpyH2D    = profile.KindMemcpyH2D
	KindMemcpyD2H    = profile.KindMemcpyD2H
	KindKernel       = profile.KindKernel
	KindSMSpan       = profile.KindSMSpan
	KindToolCallback = profile.KindToolCallback
	KindChannelFlush = profile.KindChannelFlush
	KindChannelDrain = profile.KindChannelDrain
)

// Device→host streaming channels (docs/channels.md): a per-SM double-
// buffered record stream with mid-kernel flushes, an async host receiver
// and selectable backpressure. Tools open one with NVBit.OpenChannel from
// AtInit and embed its ChannelReserveSpec PTX fragments in their injected
// functions.
type (
	// Channel is one open device→host record stream.
	Channel = channel.Channel
	// ChannelConfig configures OpenChannel.
	ChannelConfig = channel.Config
	// ChannelStats is a snapshot of a channel's delivery/drop counters.
	ChannelStats = channel.Stats
	// ChannelPolicy selects the full-buffer backpressure behaviour.
	ChannelPolicy = channel.Policy
	// ChannelReserveSpec parameterizes the device-side push fragments.
	ChannelReserveSpec = channel.ReserveSpec
)

// Channel backpressure policies.
const (
	// ChannelDrop counts and discards pushes into a full buffer.
	ChannelDrop = channel.Drop
	// ChannelBlock makes full-buffer pushes wait for a mid-kernel flush;
	// no record is ever lost.
	ChannelBlock = channel.Block
)

// Content-addressed instrumentation cache (docs/jitcache.md): disassembly
// and generated trampolines are fingerprinted by everything that determines
// them and reused across functions, attaches and — with a disk directory —
// processes. Share one JITCache between concurrent attaches to coalesce
// racing JITs of the same function into a single generation.
type (
	// JITCache is a two-tier (memory LRU + optional disk) artifact store.
	JITCache = jitcache.Cache
	// JITCacheStats is a snapshot of a JITCache's counters.
	JITCacheStats = jitcache.Stats
)

// NewJITCache opens an instrumentation cache. dir is the disk tier root (""
// for memory-only); maxMemBytes bounds the in-memory tier (<= 0 selects the
// default).
func NewJITCache(dir string, maxMemBytes int64) (*JITCache, error) {
	return jitcache.New(dir, maxMemBytes)
}

// Attach options.
var (
	// WithScheduler selects the CTA-to-SM execution backend.
	WithScheduler = core.WithScheduler
	// WithWatchdogInterval sets the launch watchdog's per-CTA budget.
	WithWatchdogInterval = core.WithWatchdogInterval
	// WithTracing attaches an activity collector (0 = default capacity).
	WithTracing = core.WithTracing
	// WithJITCache attaches a content-addressed instrumentation cache.
	WithJITCache = core.WithJITCache
	// WithInjectionMode selects the injected-call codegen strategy.
	WithInjectionMode = core.WithInjectionMode
)

// Trace export helpers.
var (
	// ToChromeTrace converts records to the chrome://tracing document form.
	ToChromeTrace = profile.ToChromeTrace
	// WriteChromeTrace writes records as chrome://tracing-loadable JSON.
	WriteChromeTrace = profile.WriteChromeTrace
	// FormatMetrics renders a per-kernel metrics table as aligned text.
	FormatMetrics = profile.FormatMetrics
)

// Scheduler kinds (WithScheduler).
const (
	SchedulerSequential = gpu.SchedulerSequential
	SchedulerParallelSM = gpu.SchedulerParallelSM
)

// Driver-facing types a tool sees in callbacks.
type (
	// CBID is a driver callback id (CUPTI-style).
	CBID = driver.CBID
	// CallParams is the per-call parameter union.
	CallParams = driver.CallParams
	// Function is the CUfunction analog.
	Function = driver.Function
	// Module is the CUmodule analog.
	Module = driver.Module
)

// Injection points.
const (
	IPointBefore = core.IPointBefore
	IPointAfter  = core.IPointAfter
)

// Driver callback ids.
const (
	CBCtxCreate      = driver.CBCtxCreate
	CBModuleLoadData = driver.CBModuleLoadData
	CBMemAlloc       = driver.CBMemAlloc
	CBMemFree        = driver.CBMemFree
	CBMemcpyHtoD     = driver.CBMemcpyHtoD
	CBMemcpyDtoH     = driver.CBMemcpyDtoH
	CBLaunchKernel   = driver.CBLaunchKernel
	CBAppExit        = driver.CBAppExit
)

// Device-fault model (docs/faults.md): a kernel trap surfaces as a *Fault
// wrapped in a typed CUresult-style sentinel; the faulting context is then
// sticky-poisoned until Context.ResetPersistingError.
type (
	// Fault is a structured device-side execution fault with kernel, PC,
	// SASS and SM/CTA/warp/lane provenance.
	Fault = gpu.Fault
	// FaultKind classifies a fault.
	FaultKind = gpu.FaultKind
)

// Fault kinds.
const (
	FaultIllegalAddress     = gpu.FaultIllegalAddress
	FaultMisalignedAddress  = gpu.FaultMisalignedAddress
	FaultInvalidInstruction = gpu.FaultInvalidInstruction
	FaultStackOverflow      = gpu.FaultStackOverflow
	FaultStackUnderflow     = gpu.FaultStackUnderflow
	FaultWatchdogTimeout    = gpu.FaultWatchdogTimeout
	FaultSharedOOB          = gpu.FaultSharedOOB
	FaultLocalOOB           = gpu.FaultLocalOOB
	FaultConstOOB           = gpu.FaultConstOOB
)

// Allocation-query types (memory-checker tools validate effective addresses
// against the device's allocation table).
type (
	// AllocSpan is one device-memory allocation: [Base, Base+Size).
	AllocSpan = gpu.AllocSpan
	// AllocState classifies an address against the allocation table.
	AllocState = gpu.AllocState
)

// Allocation states.
const (
	AddrUnallocated = gpu.AddrUnallocated
	AddrLive        = gpu.AddrLive
	AddrFreed       = gpu.AddrFreed
)

// AsFault unwraps a launch error looking for its *Fault.
var AsFault = gpu.AsFault

// CUresult-style sentinels for errors.Is classification of launch failures.
var (
	ErrIllegalAddress     = driver.ErrIllegalAddress
	ErrMisalignedAddress  = driver.ErrMisalignedAddress
	ErrIllegalInstruction = driver.ErrIllegalInstruction
	ErrHardwareStackError = driver.ErrHardwareStackError
	ErrLaunchTimeout      = driver.ErrLaunchTimeout
	ErrLaunchFailed       = driver.ErrLaunchFailed
	ErrToolCallback       = driver.ErrToolCallback
)

// Pred is a predicate register index (for GuardCall's predicate matching).
type Pred = sass.Pred

// RegSet is a dense general-purpose-register set, as returned by
// NVBit.LiveRegs — the per-site result of the backward liveness analysis
// that sizes the trampoline save set (Section 5.1).
type RegSet = sass.RegSet

// PT is the always-true predicate.
const PT = sass.PT

// Memory spaces reported by Instr.GetMemOpSpace.
const (
	MemNone   = sass.MemNone
	MemGlobal = sass.MemGlobal
	MemShared = sass.MemShared
	MemLocal  = sass.MemLocal
	MemConst  = sass.MemConst
)

// Attach injects a tool into an application's driver instance as its
// process-wide interposer and fires its AtInit callback — the one-session
// compatibility wrapper over the session model: only one such tool can be
// attached per driver (the paper's single-LD_PRELOAD-library rule), and it
// observes every unscoped context. Options configure the attachment
// (WithScheduler, WithWatchdogInterval, WithTracing) and are applied before
// AtInit runs. Use OpenSession to run several tools concurrently on one
// device, each scoped to its own context.
func Attach(api *driver.API, tool Tool, opts ...Option) (*NVBit, error) {
	return core.Attach(api, tool, opts...)
}

// Configure applies attach options (scheduler, watchdog, tracing) to a
// driver instance's device without attaching a tool — the single options
// struct also covers the uninjected-run path, so launchers need no
// tool-or-not special casing.
func Configure(api *driver.API, opts ...Option) {
	core.Configure(api, opts...)
}

// Session is one tenant's attachment to a shared driver: its own context,
// tool, JIT state and (with WithTracing) private activity timeline. Any
// number of sessions coexist on one device; the driver schedules their
// kernels onto the shared SM capacity with fair-share admission and rejects
// work with ErrDeviceOverloaded under overload. See docs/nvbitd.md for the
// daemon built on top of sessions, and docs/tools.md for migrating Attach
// calls.
type Session = core.Session

// OpenSession attaches a tool to a fresh context on the driver instead of to
// the whole process. The tool's AtInit fires before OpenSession returns; its
// AtTerm fires at Session.Close. The session's launches, channels and
// activity records are isolated from every other session's.
func OpenSession(api *driver.API, tool Tool, opts ...Option) (*Session, error) {
	return core.OpenSession(api, tool, opts...)
}

// Load-shedding (docs/nvbitd.md): when the driver's fair-share gate is
// saturated, device-owning calls fail fast with a typed *OverloadError
// wrapping the ErrDeviceOverloaded sentinel; the rejected session stays
// healthy and may retry.
type OverloadError = driver.OverloadError

// ErrDeviceOverloaded classifies load-shedding rejections via errors.Is.
var ErrDeviceOverloaded = driver.ErrDeviceOverloaded

// AsOverload unwraps an error looking for its *OverloadError.
var AsOverload = driver.AsOverload

// Argument constructors (nvbit_add_call_arg variants); see docs/tools.md for
// the full mapping.
var (
	ArgReg       = core.ArgReg
	ArgReg64     = core.ArgReg64
	ArgConst32   = core.ArgConst32
	ArgConst64   = core.ArgConst64
	ArgConstBank = core.ArgConstBank
	ArgPred      = core.ArgPred
	ArgSitePred  = core.ArgSitePred
	ArgMRefAddr  = core.ArgMRefAddr
	ArgLaunchDim = core.ArgLaunchDim
)

// Launch-configuration dimensions for ArgLaunchDim.
const (
	GridDimX  = core.GridDimX
	GridDimY  = core.GridDimY
	GridDimZ  = core.GridDimZ
	BlockDimX = core.BlockDimX
	BlockDimY = core.BlockDimY
	BlockDimZ = core.BlockDimZ
)
