// Command experiments regenerates the paper's evaluation figures on the
// simulated stack. Each figure prints the same rows/series the paper
// reports; see EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	experiments -fig all            # everything at the default sizes
//	experiments -fig 5 -size medium # Figure 5 (paper uses medium)
//	experiments -fig 8 -size large  # Figures 7/8/9 (paper uses large)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvbitgo/internal/experiments"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/workloads/specaccel"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 6, 7, 8, 9, lib, wfft, saveset, jitcache, faultinject, all")
	fiRuns := flag.Int("fi-runs", 250, "faultinject: injection runs per victim")
	fiSeed := flag.Uint64("fi-seed", 1, "faultinject: campaign manifest seed")
	sizeName := flag.String("size", "", "problem size: small, medium, large (default: per-figure paper size)")
	schedName := flag.String("scheduler", "sequential", "CTA scheduler: sequential (reference, used for published figures) or parallel")
	flag.Parse()

	sched, err := gpu.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	experiments.SetScheduler(sched)

	size := func(def specaccel.Size) specaccel.Size {
		switch *sizeName {
		case "small":
			return specaccel.Small
		case "medium":
			return specaccel.Medium
		case "large":
			return specaccel.Large
		case "":
			return def
		default:
			fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeName)
			os.Exit(2)
		}
		return def
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	section := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fail(err)
		}
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	runFig5 := func() error {
		rows, err := experiments.Fig5(size(specaccel.Medium))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig5(rows))
		return nil
	}
	runLib := func() error {
		rows, err := experiments.LibFraction()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderLibFraction(rows))
		return nil
	}
	runFig6 := func() error {
		rows, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(rows))
		return nil
	}
	runFig789 := func() error {
		f7, f8, f9, err := experiments.Fig789(size(specaccel.Large))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig7(f7))
		fmt.Println()
		fmt.Print(experiments.RenderFig8(f8))
		fmt.Println()
		fmt.Print(experiments.RenderFig9(f9))
		return nil
	}
	runSaveSet := func() error {
		rows, err := experiments.SaveSet(size(specaccel.Small))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSaveSet(rows))
		return nil
	}
	runWFFT := func() error {
		r, err := experiments.WFFT()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderWFFT(r))
		return nil
	}
	runJITCache := func() error {
		dir, err := os.MkdirTemp("", "nvbit-jitcache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		rows, err := experiments.JITCache(dir, size(specaccel.Medium))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderJITCache(rows))
		return nil
	}

	runFaultInject := func() error {
		rows, err := experiments.FaultInject(*fiRuns, *fiSeed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFaultInject(rows))
		return nil
	}

	switch *fig {
	case "5":
		section("fig5", runFig5)
	case "lib":
		section("lib", runLib)
	case "6":
		section("fig6", runFig6)
	case "7", "8", "9":
		section("fig789", runFig789)
	case "wfft":
		section("wfft", runWFFT)
	case "saveset":
		section("saveset", runSaveSet)
	case "jitcache":
		section("jitcache", runJITCache)
	case "faultinject":
		section("faultinject", runFaultInject)
	case "all":
		section("fig5", runFig5)
		section("lib", runLib)
		section("fig6", runFig6)
		section("fig789", runFig789)
		section("wfft", runWFFT)
		section("saveset", runSaveSet)
		section("jitcache", runJITCache)
		section("faultinject", runFaultInject)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
