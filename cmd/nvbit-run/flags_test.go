package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nvbitgo/internal/cliconf"
)

// TestFlagTable keeps the flag table in docs/nvbit-run.md generated from
// the flag declarations. Regenerate with:
//
//	UPDATE_DOCS=1 go test ./cmd/nvbit-run -run TestFlagTable
func TestFlagTable(t *testing.T) {
	fs := flag.NewFlagSet("nvbit-run", flag.ContinueOnError)
	_, cc := newFlags(fs)
	table := cc.TableMarkdown()
	path := filepath.Join("..", "..", "docs", "nvbit-run.md")

	if os.Getenv("UPDATE_DOCS") != "" {
		if err := cliconf.WriteDocsTable(path, table); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := cliconf.DocsTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != strings.Trim(table, "\n") {
		t.Errorf("docs/nvbit-run.md flag table is stale; regenerate with UPDATE_DOCS=1 go test ./cmd/nvbit-run -run TestFlagTable\nwant:\n%s\ngot:\n%s", table, got)
	}
}
