// Command nvbit-run launches a workload with an NVBit tool attached — the
// analog of LD_PRELOAD-ing a tool's shared library under an application:
//
//	nvbit-run -tool instrcount -workload specaccel:cg -size medium
//	nvbit-run -tool memdiv -workload ml:ResNet
//	nvbit-run -tool opcode_hist -workload specaccel:ostencil
//	nvbit-run -trace out.json -metrics -tool opcode_hist
//	nvbit-run -connect /run/nvbitd.sock -tool itrace -workload specaccel:cg
//
// Every flag has an NVBIT_* environment fallback (flag wins over the
// environment, the environment over the default): -tool falls back to
// NVBIT_TOOL, -jit-cache to NVBIT_JIT_CACHE, and so on — see
// docs/nvbit-run.md for the full table, which is generated from the same
// declarations the parser uses.
//
// With -connect the workload runs as one session of an nvbitd daemon
// instead of on an in-process device: the tool is injected daemon-side and
// the session's report comes back over the socket, byte-identical to a
// standalone run's (docs/nvbitd.md).
//
// Exit codes are uniform across tools:
//
//	0  the workload ran to completion and no tool reported a violation
//	1  the workload failed (launch fault, driver error, I/O failure)
//	2  a tool reported a violation (e.g. memcheck found invalid accesses)
//	64 command-line usage error
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nvbitgo/internal/campaign"
	"nvbitgo/internal/cliconf"
	"nvbitgo/internal/driver"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/nvbitd"
	"nvbitgo/internal/profile"
	"nvbitgo/internal/sass"
	"nvbitgo/internal/tools/registry"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

// Uniform exit codes (documented in -help).
const (
	exitOK        = 0
	exitFailure   = 1
	exitViolation = 2
	exitUsage     = 64
)

// appConfig is every nvbit-run flag, declared through one cliconf.Set so
// each gets its NVBIT_* environment fallback and a row in the generated
// docs table.
type appConfig struct {
	tool         *string
	out          *string
	backpressure *string
	traceOut     *string
	traceJSON    *string
	metrics      *bool
	jitCacheDir  *string
	workload     *string
	connect      *string
	fiGroup      *string
	fiModel      *string
	fiTarget     *uint64
	fiBit        *uint
	fiValue      *uint
	campaignDir  *string
	campaignRuns *int
	campaignMax  *int
	seed         *uint64
	workers      *int
	sizeName     *string
	familyName   *string
	schedName    *string
	injectName   *string
}

// newFlags declares the flag surface on fs. flags_test.go keeps
// docs/nvbit-run.md's table in sync with these declarations.
func newFlags(fs *flag.FlagSet) (*appConfig, *cliconf.Set) {
	cc := cliconf.New(fs)
	c := &appConfig{
		tool:         cc.String("tool", "", "tool: none, instrcount, instrcount-bb, memdiv, ophisto, opcode_hist, ophisto-sampled, cachesim, itrace, memtrace, memcheck, faultinject"),
		out:          cc.String("out", "", "write tool reports to this file instead of stdout"),
		backpressure: cc.String("backpressure", "drop", "channel tools (cachesim, itrace, memtrace): drop or block when buffers fill"),
		traceOut:     cc.String("trace-out", "", "itrace: write the collected warp trace to this file"),
		traceJSON:    cc.String("trace", "", "write a chrome://tracing activity timeline (JSON) to this file"),
		metrics:      cc.Bool("metrics", false, "print the per-kernel metrics table after the run"),
		jitCacheDir:  cc.String("jit-cache", "", "persist instrumented code to this directory and reuse it across runs"),
		workload:     cc.String("workload", "specaccel:ostencil", "workload: specaccel:<name> or ml:<Network>"),
		connect:      cc.String("connect", "", "run as a session of the nvbitd daemon at this unix socket instead of in-process"),
		fiGroup:      cc.String("fi-group", "gpr", "faultinject: instruction group (gpr, fp32, fp64, ld, all)"),
		fiModel:      cc.String("fi-model", "flip", "faultinject: injection model (flip, flip2, rand, zero; campaigns also accept mix)"),
		fiTarget:     cc.Uint64("fi-target", 0, "faultinject: dynamic thread-instruction index to corrupt"),
		fiBit:        cc.Uint("fi-bit", 0, "faultinject: bit position for flip/flip2 models"),
		fiValue:      cc.Uint("fi-value", 0, "faultinject: replacement value for the rand model"),
		campaignDir:  cc.String("campaign", "", "fault-injection campaign directory: plan a campaign there if absent, resume it otherwise"),
		campaignRuns: cc.Int("campaign-runs", 1000, "campaign: planned number of injection runs"),
		campaignMax:  cc.Int("campaign-max-runs", 0, "campaign: stop this invocation after N runs (0 = finish the campaign)"),
		seed:         cc.Uint64("seed", 1, "campaign: manifest RNG seed"),
		workers:      cc.Int("workers", 4, "campaign: parallel simulator instances"),
		sizeName:     cc.String("size", "medium", "specaccel size: small, medium, large"),
		familyName:   cc.String("family", "volta", "device family"),
		schedName:    cc.String("scheduler", "sequential", "CTA scheduler: sequential or parallel (one worker per SM)"),
		injectName:   cc.String("inject", "trampoline", "injection codegen mode: trampoline, full-save, or inline"),
	}
	return c, cc
}

// deferredFile is an io.Writer that creates its file on first write, so a
// failed run leaves no empty artifact behind.
type deferredFile struct {
	path string
	f    *os.File
}

func (d *deferredFile) Write(p []byte) (int, error) {
	if d.f == nil {
		f, err := os.Create(d.path)
		if err != nil {
			return 0, err
		}
		d.f = f
	}
	return d.f.Write(p)
}

func (d *deferredFile) Close() error {
	if d.f == nil {
		return nil
	}
	return d.f.Close()
}

func main() {
	// A ContinueOnError flag set: the flag package's default behavior exits
	// with status 2 on a bad flag, which would collide with the
	// tool-violation code; usage errors exit 64 instead (EX_USAGE).
	fs := flag.NewFlagSet("nvbit-run", flag.ContinueOnError)
	c, cc := newFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: nvbit-run [flags]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), `
output:
  tool reports go to stdout by default; -out <file> redirects them (the
  workload/JIT summary lines stay on stdout, diagnostics on stderr)

environment:
  every flag falls back to NVBIT_<FLAG> (uppercased, dashes to
  underscores) when not given on the command line; see docs/nvbit-run.md

exit codes:
  0   workload completed, no tool violations
  1   workload failed (launch fault, driver error, I/O failure)
  2   a tool reported a violation (e.g. memcheck invalid accesses)
  64  command-line usage error`)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(exitOK)
		}
		os.Exit(exitUsage)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbit-run:", err)
		os.Exit(exitFailure)
	}
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbit-run:", err)
		os.Exit(exitUsage)
	}

	if err := cc.Resolve(); err != nil {
		usage(err)
	}

	fam, ok := map[string]sass.Family{
		"kepler": sass.Kepler, "maxwell": sass.Maxwell,
		"pascal": sass.Pascal, "volta": sass.Volta,
	}[*c.familyName]
	if !ok {
		usage(fmt.Errorf("unknown family %q", *c.familyName))
	}
	size, ok := map[string]specaccel.Size{
		"small": specaccel.Small, "medium": specaccel.Medium, "large": specaccel.Large,
	}[*c.sizeName]
	if !ok {
		usage(fmt.Errorf("unknown size %q", *c.sizeName))
	}

	sched, err := gpu.ParseScheduler(*c.schedName)
	if err != nil {
		usage(err)
	}
	inject, err := nvbit.ParseInjectionMode(*c.injectName)
	if err != nil {
		usage(err)
	}

	// Campaign mode: no single workload run, no tool injection here — the
	// campaign engine executes the victim once per planned injection in its
	// own simulator instances (Volta, sequential scheduler, watchdog).
	if *c.campaignDir != "" {
		if *c.connect != "" {
			usage(fmt.Errorf("-campaign and -connect are mutually exclusive: campaigns own their simulator instances"))
		}
		kind, name, _ := strings.Cut(*c.workload, ":")
		if kind != "specaccel" {
			usage(fmt.Errorf("campaigns run specaccel victims, got workload %q", *c.workload))
		}
		cfg := campaign.Config{
			Benchmark: name,
			Size:      *c.sizeName,
			Group:     *c.fiGroup,
			Model:     *c.fiModel,
			Runs:      *c.campaignRuns,
			Seed:      *c.seed,
		}
		cmp, err := campaign.Open(*c.campaignDir, cfg)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		done, err := cmp.Run(*c.workers, *c.campaignMax)
		if err != nil {
			fail(err)
		}
		fmt.Printf("campaign %s: %d runs this invocation (%.2fs wall, %d workers)\n",
			*c.campaignDir, done, time.Since(start).Seconds(), *c.workers)
		fmt.Print(cmp.Report())
		os.Exit(exitOK)
	}

	if _, ok := map[string]bool{"drop": true, "block": true}[*c.backpressure]; !ok {
		usage(fmt.Errorf("unknown backpressure policy %q (want drop or block)", *c.backpressure))
	}
	policy := nvbit.ChannelDrop
	if *c.backpressure == "block" {
		policy = nvbit.ChannelBlock
	}

	// Tool reports go to -out when given; everything else stays on stdout.
	var reportW io.Writer = os.Stdout
	var outFile *os.File
	if *c.out != "" {
		f, err := os.Create(*c.out)
		if err != nil {
			fail(err)
		}
		outFile = f
		reportW = f
	}

	if *c.connect != "" {
		runConnected(c, cc, size, reportW, outFile, fail, usage)
		return
	}

	// Resolve the tool through the registry (the same catalog nvbitd
	// serves, so reports stay byte-identical across both paths).
	toolName := *c.tool
	if toolName == "" {
		toolName = "none"
	}
	var traceFile *deferredFile
	regOpts := registry.Options{
		Policy:   policy,
		FIGroup:  *c.fiGroup,
		FIModel:  *c.fiModel,
		FITarget: *c.fiTarget,
		FIBit:    *c.fiBit,
		FIValue:  uint32(*c.fiValue),
	}
	if *c.traceOut != "" {
		traceFile = &deferredFile{path: *c.traceOut}
		regOpts.TraceOut = traceFile
	}
	inst, err := registry.New(toolName, regOpts)
	if err != nil {
		usage(err)
	}

	api, err := driver.New(gpu.DefaultConfig(fam))
	if err != nil {
		fail(err)
	}
	tracing := *c.traceJSON != "" || *c.metrics

	// One options struct configures the attachment — or, with no tool, the
	// bare device — so the two paths cannot drift.
	opts := []nvbit.Option{nvbit.WithScheduler(sched), nvbit.WithInjectionMode(inject)}
	if tracing {
		opts = append(opts, nvbit.WithTracing(0))
	}
	var jc *nvbit.JITCache
	if *c.jitCacheDir != "" {
		if jc, err = nvbit.NewJITCache(*c.jitCacheDir, 0); err != nil {
			fail(err)
		}
		opts = append(opts, nvbit.WithJITCache(jc))
	}
	var nv *nvbit.NVBit
	if toolName == "none" {
		nvbit.Configure(api, opts...)
	} else {
		if nv, err = nvbit.Attach(api, inst.Tool, opts...); err != nil {
			fail(err)
		}
	}

	ctx, err := api.CtxCreate()
	if err != nil {
		fail(err)
	}

	start := time.Now()
	runWorkload(ctx, *c.workload, size, fail, usage)
	elapsed := time.Since(start)
	api.Close()

	st := api.Device().Stats()
	fmt.Printf("workload %s: %d launches, %d warp instructions, %d cycles, %.2fs wall\n",
		*c.workload, st.Launches, st.WarpInstrs, st.Cycles, elapsed.Seconds())
	violations := false
	if toolName != "none" {
		v, err := inst.Report(reportW, nv)
		if err != nil {
			fail(err)
		}
		violations = v
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(reportW, "trace written to %s\n", *c.traceOut)
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fail(err)
		}
	}
	if nv != nil {
		js := nv.JITStats()
		fmt.Printf("jit: lifted %d funcs / %d instrs, %d trampolines (%.1f saved regs each), %d inlined sites, %v total (%v disasm)\n",
			js.FunctionsLifted, js.InstrsLifted, js.TrampolinesEmitted, js.AvgSavedRegs(), js.InlinedSites, js.Total().Round(time.Microsecond), js.Disassemble.Round(time.Microsecond))
		if jc != nil {
			fmt.Printf("jit-cache: %d lookups, %d hits, %d misses (%.1f%% hit ratio), %d bytes in, %d bytes out, %d trampolines from cache\n",
				js.CacheLookups, js.CacheHits, js.CacheMisses, 100*js.CacheHitRatio(),
				js.CacheBytesRead, js.CacheBytesWritten, js.TrampolinesFromCache)
		}
	}
	if prof := api.Device().Profiler(); prof != nil {
		if *c.metrics {
			fmt.Print(profile.FormatMetrics(prof.Metrics()))
		}
		if *c.traceJSON != "" {
			recs := prof.Records()
			f, err := os.Create(*c.traceJSON)
			if err != nil {
				fail(err)
			}
			if err := profile.WriteChromeTrace(f, recs); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("activity timeline: %d records written to %s (%d dropped)\n",
				len(recs), *c.traceJSON, prof.Dropped())
		}
	}
	if violations {
		os.Exit(exitViolation)
	}
}

// runWorkload dispatches the -workload argument onto a launcher. The ml
// suite needs an in-process *driver.Context (its layers call into the
// device directly), so it is dispatched separately below.
func runWorkload(ctx *driver.Context, workload string, size specaccel.Size, fail, usage func(error)) {
	kind, name, _ := strings.Cut(workload, ":")
	switch kind {
	case "specaccel":
		b := findBenchmark(name)
		if b == nil {
			usage(fmt.Errorf("unknown specaccel benchmark %q", name))
		}
		if err := b.Run(ctx, size); err != nil {
			fail(err)
		}
	case "ml":
		var net *mlsuite.Network
		for _, cand := range mlsuite.Networks() {
			if cand.Name == name {
				cp := cand
				net = &cp
			}
		}
		if net == nil {
			usage(fmt.Errorf("unknown ML network %q", name))
		}
		if _, err := mlsuite.Run(ctx, nil, *net); err != nil {
			fail(err)
		}
	default:
		usage(fmt.Errorf("unknown workload kind %q (want specaccel: or ml:)", kind))
	}
}

func findBenchmark(name string) *specaccel.Benchmark {
	for _, cand := range specaccel.Benchmarks() {
		if cand.Name == name {
			return cand
		}
	}
	return nil
}

// runConnected executes the workload as one session of an nvbitd daemon.
// Device-side knobs (-family, -scheduler, -jit-cache) belong to the daemon
// and are rejected when set explicitly, as are the in-process-only
// observability flags.
func runConnected(c *appConfig, cc *cliconf.Set, size specaccel.Size, reportW io.Writer, outFile *os.File, fail, usage func(error)) {
	for _, name := range []string{"family", "scheduler", "jit-cache", "trace", "trace-out", "metrics"} {
		if cc.Explicit(name) {
			usage(fmt.Errorf("-%s is not available with -connect: the daemon owns its devices (see docs/nvbitd.md)", name))
		}
	}
	kind, name, _ := strings.Cut(*c.workload, ":")
	if kind != "specaccel" {
		usage(fmt.Errorf("connect mode runs specaccel workloads, got %q (the ml suite needs an in-process device)", *c.workload))
	}
	b := findBenchmark(name)
	if b == nil {
		usage(fmt.Errorf("unknown specaccel benchmark %q", name))
	}
	toolName := *c.tool
	if toolName == "" {
		toolName = "none"
	}
	sess, err := nvbitd.Dial(*c.connect, nvbitd.OpenSpec{
		Tool:     toolName,
		Policy:   *c.backpressure,
		Inject:   *c.injectName,
		FIGroup:  *c.fiGroup,
		FIModel:  *c.fiModel,
		FITarget: *c.fiTarget,
		FIBit:    *c.fiBit,
		FIValue:  uint32(*c.fiValue),
	})
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	start := time.Now()
	if err := b.Run(sess, size); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	r, err := sess.Report()
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload %s: %d launches, %d session cycles (nvbitd session %d), %.2fs wall\n",
		*c.workload, r.Launches, r.Cycles, sess.Session(), elapsed.Seconds())
	if _, err := io.WriteString(reportW, r.Text); err != nil {
		fail(err)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fail(err)
		}
	}
	if r.Violation {
		os.Exit(exitViolation)
	}
	os.Exit(exitOK)
}
