// Command nvbit-run launches a workload with an NVBit tool attached — the
// analog of LD_PRELOAD-ing a tool's shared library under an application:
//
//	nvbit-run -tool instrcount -workload specaccel:cg -size medium
//	nvbit-run -tool memdiv -workload ml:ResNet
//	nvbit-run -tool opcode_hist -workload specaccel:ostencil
//	nvbit-run -trace out.json -metrics -tool opcode_hist
//
// The tool may also be chosen with the NVBIT_TOOL environment variable
// (flag wins), echoing how the real framework is injected via environment.
//
// Exit codes are uniform across tools:
//
//	0  the workload ran to completion and no tool reported a violation
//	1  the workload failed (launch fault, driver error, I/O failure)
//	2  a tool reported a violation (e.g. memcheck found invalid accesses)
//	64 command-line usage error
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nvbitgo/internal/campaign"
	"nvbitgo/internal/driver"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/profile"
	"nvbitgo/internal/sass"
	"nvbitgo/internal/tools/cachesim"
	"nvbitgo/internal/tools/faultinject"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/itrace"
	"nvbitgo/internal/tools/memcheck"
	"nvbitgo/internal/tools/memdiv"
	"nvbitgo/internal/tools/memtrace"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

// Uniform exit codes (documented in -help).
const (
	exitOK        = 0
	exitFailure   = 1
	exitViolation = 2
	exitUsage     = 64
)

func main() {
	// A ContinueOnError flag set: the flag package's default behavior exits
	// with status 2 on a bad flag, which would collide with the
	// tool-violation code; usage errors exit 64 instead (EX_USAGE).
	fs := flag.NewFlagSet("nvbit-run", flag.ContinueOnError)
	toolName := fs.String("tool", os.Getenv("NVBIT_TOOL"), "tool: none, instrcount, instrcount-bb, memdiv, ophisto, opcode_hist, ophisto-sampled, cachesim, itrace, memtrace, memcheck, faultinject")
	outPath := fs.String("out", "", "write tool reports to this file instead of stdout")
	backpressure := fs.String("backpressure", "drop", "channel tools (cachesim, itrace, memtrace): drop or block when buffers fill")
	traceOut := fs.String("trace-out", "", "itrace: write the collected warp trace to this file")
	traceJSON := fs.String("trace", "", "write a chrome://tracing activity timeline (JSON) to this file")
	metrics := fs.Bool("metrics", false, "print the per-kernel metrics table after the run")
	jitCacheDir := fs.String("jit-cache", os.Getenv("NVBIT_JIT_CACHE"), "persist instrumented code to this directory and reuse it across runs (env NVBIT_JIT_CACHE)")
	workload := fs.String("workload", "specaccel:ostencil", "workload: specaccel:<name> or ml:<Network>")
	fiGroup := fs.String("fi-group", "gpr", "faultinject: instruction group (gpr, fp32, fp64, ld, all)")
	fiModel := fs.String("fi-model", "flip", "faultinject: injection model (flip, flip2, rand, zero; campaigns also accept mix)")
	fiTarget := fs.Uint64("fi-target", 0, "faultinject: dynamic thread-instruction index to corrupt")
	fiBit := fs.Uint("fi-bit", 0, "faultinject: bit position for flip/flip2 models")
	fiValue := fs.Uint("fi-value", 0, "faultinject: replacement value for the rand model")
	campaignDir := fs.String("campaign", "", "fault-injection campaign directory: plan a campaign there if absent, resume it otherwise")
	campaignRuns := fs.Int("campaign-runs", 1000, "campaign: planned number of injection runs")
	campaignMax := fs.Int("campaign-max-runs", 0, "campaign: stop this invocation after N runs (0 = finish the campaign)")
	seed := fs.Uint64("seed", 1, "campaign: manifest RNG seed")
	workers := fs.Int("workers", 4, "campaign: parallel simulator instances")
	sizeName := fs.String("size", "medium", "specaccel size: small, medium, large")
	familyName := fs.String("family", "volta", "device family")
	schedName := fs.String("scheduler", "sequential", "CTA scheduler: sequential or parallel (one worker per SM)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: nvbit-run [flags]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), `
output:
  tool reports go to stdout by default; -out <file> redirects them (the
  workload/JIT summary lines stay on stdout, diagnostics on stderr)

exit codes:
  0   workload completed, no tool violations
  1   workload failed (launch fault, driver error, I/O failure)
  2   a tool reported a violation (e.g. memcheck invalid accesses)
  64  command-line usage error`)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(exitOK)
		}
		os.Exit(exitUsage)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbit-run:", err)
		os.Exit(exitFailure)
	}
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbit-run:", err)
		os.Exit(exitUsage)
	}

	fam, ok := map[string]sass.Family{
		"kepler": sass.Kepler, "maxwell": sass.Maxwell,
		"pascal": sass.Pascal, "volta": sass.Volta,
	}[*familyName]
	if !ok {
		usage(fmt.Errorf("unknown family %q", *familyName))
	}
	size, ok := map[string]specaccel.Size{
		"small": specaccel.Small, "medium": specaccel.Medium, "large": specaccel.Large,
	}[*sizeName]
	if !ok {
		usage(fmt.Errorf("unknown size %q", *sizeName))
	}

	sched, err := gpu.ParseScheduler(*schedName)
	if err != nil {
		usage(err)
	}

	// Campaign mode: no single workload run, no tool injection here — the
	// campaign engine executes the victim once per planned injection in its
	// own simulator instances (Volta, sequential scheduler, watchdog).
	if *campaignDir != "" {
		kind, name, _ := strings.Cut(*workload, ":")
		if kind != "specaccel" {
			usage(fmt.Errorf("campaigns run specaccel victims, got workload %q", *workload))
		}
		cfg := campaign.Config{
			Benchmark: name,
			Size:      *sizeName,
			Group:     *fiGroup,
			Model:     *fiModel,
			Runs:      *campaignRuns,
			Seed:      *seed,
		}
		c, err := campaign.Open(*campaignDir, cfg)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		done, err := c.Run(*workers, *campaignMax)
		if err != nil {
			fail(err)
		}
		fmt.Printf("campaign %s: %d runs this invocation (%.2fs wall, %d workers)\n",
			*campaignDir, done, time.Since(start).Seconds(), *workers)
		fmt.Print(c.Report())
		os.Exit(exitOK)
	}
	policy, ok := map[string]nvbit.ChannelPolicy{
		"drop": nvbit.ChannelDrop, "block": nvbit.ChannelBlock,
	}[*backpressure]
	if !ok {
		usage(fmt.Errorf("unknown backpressure policy %q (want drop or block)", *backpressure))
	}

	// Tool reports go to -out when given; everything else stays on stdout.
	var reportW io.Writer = os.Stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		outFile = f
		reportW = f
	}
	api, err := driver.New(gpu.DefaultConfig(fam))
	if err != nil {
		fail(err)
	}
	tracing := *traceJSON != "" || *metrics

	// Inject the selected tool (at most one library can be injected).
	var tool nvbit.Tool
	violations := false
	var report func(w io.Writer, nv *nvbit.NVBit)
	switch *toolName {
	case "", "none":
	case "instrcount", "instrcount-bb":
		t := instrcount.New()
		t.PerBasicBlock = *toolName == "instrcount-bb"
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			fmt.Fprintf(w, "thread-level instructions: app %d, libraries %d (%.1f%% in libraries)\n",
				t.AppInstrs(nv), t.LibInstrs(nv), 100*t.LibraryFraction(nv))
		}
	case "memdiv":
		t := memdiv.New()
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			fmt.Fprintf(w, "average cache lines requested per memory instruction %f\n",
				t.AvgLinesPerMemInstr(nv))
		}
	case "cachesim":
		cfg := cachesim.DefaultConfig()
		cfg.Policy = policy
		t := cachesim.New(cfg)
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			st := t.Stats()
			fmt.Fprintf(w, "cache replay: %d accesses, L1 %.1f%% hit, L2 %d hits / %d misses, %d dropped\n",
				st.Accesses, 100*st.L1HitRate(), st.L2Hits, st.L2Misses, st.Dropped)
		}
	case "itrace":
		t := itrace.New(1 << 20)
		t.Policy = policy
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			kernels := map[uint32]bool{}
			for _, r := range t.Records {
				kernels[r.KernelID] = true
			}
			fmt.Fprintf(w, "trace: %d warp-level records across %d kernels, %d dropped\n",
				len(t.Records), len(kernels), t.Dropped())
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fail(err)
				}
				if _, err := t.WriteTo(f); err != nil {
					fail(err)
				}
				if err := f.Close(); err != nil {
					fail(err)
				}
				fmt.Fprintf(w, "trace written to %s\n", *traceOut)
			}
		}
	case "memtrace":
		// 280-byte records are double-buffered per SM: 64K aggregate slots
		// cost ~36 MB of device memory and mid-kernel flushes recycle them.
		t := memtrace.New(1 << 16)
		t.Policy = policy
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			kernels := map[uint32]bool{}
			var lanes uint64
			for _, r := range t.Records {
				kernels[r.KernelID] = true
				for m := r.ExecMask; m != 0; m &= m - 1 {
					lanes++
				}
			}
			st := t.Stats()
			fmt.Fprintf(w, "memtrace: %d warp-level accesses (%d lane addresses) across %d kernels, %d dropped\n",
				len(t.Records), lanes, len(kernels), st.Dropped)
			fmt.Fprintf(w, "memtrace channel: %d flushes (%d sweep, %d cta, %d drain), %d bytes shipped\n",
				st.Flushes, st.TickFlushes, st.CTAFlushes, st.DrainFlushes, st.BytesShipped)
		}
	case "memcheck":
		t := memcheck.New(1 << 20)
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			t.Report(w)
			if t.TotalViolations > 0 {
				violations = true
			}
		}
	case "faultinject":
		group, err := faultinject.ParseGroup(*fiGroup)
		if err != nil {
			usage(err)
		}
		model, err := faultinject.ParseModel(*fiModel)
		if err != nil {
			usage(err)
		}
		t := faultinject.New(faultinject.Injection{
			Group: group, Target: *fiTarget, Model: model,
			Bit: *fiBit, Value: uint32(*fiValue),
		})
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			r, err := t.Result()
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(w, "faultinject: %s\n", r)
		}
	case "ophisto", "opcode_hist", "ophisto-sampled":
		t := ophisto.New(*toolName == "ophisto-sampled")
		tool = t
		report = func(w io.Writer, nv *nvbit.NVBit) {
			fmt.Fprintln(w, "top-5 executed instructions:")
			for _, e := range t.Top(nv, 5) {
				fmt.Fprintf(w, "  %-8s %12d\n", e.Opcode, e.Count)
			}
		}
	default:
		usage(fmt.Errorf("unknown tool %q", *toolName))
	}
	var jc *nvbit.JITCache
	if *jitCacheDir != "" {
		if jc, err = nvbit.NewJITCache(*jitCacheDir, 0); err != nil {
			fail(err)
		}
	}
	var nv *nvbit.NVBit
	if tool != nil {
		opts := []nvbit.Option{nvbit.WithScheduler(sched)}
		if tracing {
			opts = append(opts, nvbit.WithTracing(0))
		}
		if jc != nil {
			opts = append(opts, nvbit.WithJITCache(jc))
		}
		if nv, err = nvbit.Attach(api, tool, opts...); err != nil {
			fail(err)
		}
	} else {
		// No interposer library: configure the device directly.
		api.Device().SetScheduler(sched)
		if tracing {
			api.Device().SetProfiler(profile.NewCollector(0))
		}
	}

	ctx, err := api.CtxCreate()
	if err != nil {
		fail(err)
	}

	start := time.Now()
	kind, name, _ := strings.Cut(*workload, ":")
	switch kind {
	case "specaccel":
		var b *specaccel.Benchmark
		for _, cand := range specaccel.Benchmarks() {
			if cand.Name == name {
				b = cand
			}
		}
		if b == nil {
			usage(fmt.Errorf("unknown specaccel benchmark %q", name))
		}
		if err := b.Run(ctx, size); err != nil {
			fail(err)
		}
	case "ml":
		var net *mlsuite.Network
		for _, cand := range mlsuite.Networks() {
			if cand.Name == name {
				c := cand
				net = &c
			}
		}
		if net == nil {
			usage(fmt.Errorf("unknown ML network %q", name))
		}
		if _, err := mlsuite.Run(ctx, nil, *net); err != nil {
			fail(err)
		}
	default:
		usage(fmt.Errorf("unknown workload kind %q (want specaccel: or ml:)", kind))
	}
	elapsed := time.Since(start)
	api.Close()

	st := api.Device().Stats()
	fmt.Printf("workload %s: %d launches, %d warp instructions, %d cycles, %.2fs wall\n",
		*workload, st.Launches, st.WarpInstrs, st.Cycles, elapsed.Seconds())
	if report != nil {
		report(reportW, nv)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fail(err)
		}
	}
	if nv != nil {
		js := nv.JITStats()
		fmt.Printf("jit: lifted %d funcs / %d instrs, %d trampolines (%.1f saved regs each), %v total (%v disasm)\n",
			js.FunctionsLifted, js.InstrsLifted, js.TrampolinesEmitted, js.AvgSavedRegs(), js.Total().Round(time.Microsecond), js.Disassemble.Round(time.Microsecond))
		if jc != nil {
			fmt.Printf("jit-cache: %d lookups, %d hits, %d misses (%.1f%% hit ratio), %d bytes in, %d bytes out, %d trampolines from cache\n",
				js.CacheLookups, js.CacheHits, js.CacheMisses, 100*js.CacheHitRatio(),
				js.CacheBytesRead, js.CacheBytesWritten, js.TrampolinesFromCache)
		}
	}
	if prof := api.Device().Profiler(); prof != nil {
		if *metrics {
			fmt.Print(profile.FormatMetrics(prof.Metrics()))
		}
		if *traceJSON != "" {
			recs := prof.Records()
			f, err := os.Create(*traceJSON)
			if err != nil {
				fail(err)
			}
			if err := profile.WriteChromeTrace(f, recs); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("activity timeline: %d records written to %s (%d dropped)\n",
				len(recs), *traceJSON, prof.Dropped())
		}
	}
	if violations {
		os.Exit(exitViolation)
	}
}
