// Command nvbit-run launches a workload with an NVBit tool attached — the
// analog of LD_PRELOAD-ing a tool's shared library under an application:
//
//	nvbit-run -tool instrcount -workload specaccel:cg -size medium
//	nvbit-run -tool memdiv -workload ml:ResNet
//	nvbit-run -tool ophisto-sampled -workload specaccel:ostencil
//
// The tool may also be chosen with the NVBIT_TOOL environment variable
// (flag wins), echoing how the real framework is injected via environment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nvbitgo/internal/driver"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/sass"
	"nvbitgo/internal/tools/cachesim"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/itrace"
	"nvbitgo/internal/tools/memcheck"
	"nvbitgo/internal/tools/memdiv"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

func main() {
	toolName := flag.String("tool", os.Getenv("NVBIT_TOOL"), "tool: none, instrcount, instrcount-bb, memdiv, ophisto, ophisto-sampled, cachesim, itrace, memcheck")
	traceOut := flag.String("trace-out", "", "itrace: write the collected trace to this file")
	workload := flag.String("workload", "specaccel:ostencil", "workload: specaccel:<name> or ml:<Network>")
	sizeName := flag.String("size", "medium", "specaccel size: small, medium, large")
	familyName := flag.String("family", "volta", "device family")
	schedName := flag.String("scheduler", "sequential", "CTA scheduler: sequential or parallel (one worker per SM)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbit-run:", err)
		os.Exit(1)
	}

	fam, ok := map[string]sass.Family{
		"kepler": sass.Kepler, "maxwell": sass.Maxwell,
		"pascal": sass.Pascal, "volta": sass.Volta,
	}[*familyName]
	if !ok {
		fail(fmt.Errorf("unknown family %q", *familyName))
	}
	size, ok := map[string]specaccel.Size{
		"small": specaccel.Small, "medium": specaccel.Medium, "large": specaccel.Large,
	}[*sizeName]
	if !ok {
		fail(fmt.Errorf("unknown size %q", *sizeName))
	}

	sched, err := gpu.ParseScheduler(*schedName)
	if err != nil {
		fail(err)
	}
	cfg := gpu.DefaultConfig(fam)
	cfg.Scheduler = sched
	api, err := driver.New(cfg)
	if err != nil {
		fail(err)
	}

	// Inject the selected tool (at most one library can be injected).
	var tool nvbit.Tool
	var report func(nv *nvbit.NVBit)
	switch *toolName {
	case "", "none":
	case "instrcount", "instrcount-bb":
		t := instrcount.New()
		t.PerBasicBlock = *toolName == "instrcount-bb"
		tool = t
		report = func(nv *nvbit.NVBit) {
			fmt.Printf("thread-level instructions: app %d, libraries %d (%.1f%% in libraries)\n",
				t.AppInstrs(nv), t.LibInstrs(nv), 100*t.LibraryFraction(nv))
		}
	case "memdiv":
		t := memdiv.New()
		tool = t
		report = func(nv *nvbit.NVBit) {
			fmt.Printf("average cache lines requested per memory instruction %f\n",
				t.AvgLinesPerMemInstr(nv))
		}
	case "cachesim":
		t := cachesim.New(cachesim.DefaultConfig())
		tool = t
		report = func(nv *nvbit.NVBit) {
			st := t.Stats()
			fmt.Printf("cache replay: %d accesses, L1 %.1f%% hit, L2 %d hits / %d misses, %d dropped\n",
				st.Accesses, 100*st.L1HitRate(), st.L2Hits, st.L2Misses, st.Dropped)
		}
	case "itrace":
		t := itrace.New(1 << 20)
		tool = t
		report = func(nv *nvbit.NVBit) {
			kernels := map[uint32]bool{}
			for _, r := range t.Records {
				kernels[r.KernelID] = true
			}
			fmt.Printf("trace: %d warp-level records across %d kernels, %d dropped\n",
				len(t.Records), len(kernels), t.Dropped)
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fail(err)
				}
				if _, err := t.WriteTo(f); err != nil {
					fail(err)
				}
				if err := f.Close(); err != nil {
					fail(err)
				}
				fmt.Printf("trace written to %s\n", *traceOut)
			}
		}
	case "memcheck":
		t := memcheck.New(1 << 20)
		tool = t
		report = func(nv *nvbit.NVBit) {
			t.Report(os.Stdout)
			if t.TotalViolations > 0 {
				os.Exit(2)
			}
		}
	case "ophisto", "ophisto-sampled":
		t := ophisto.New(*toolName == "ophisto-sampled")
		tool = t
		report = func(nv *nvbit.NVBit) {
			fmt.Println("top-5 executed instructions:")
			for _, e := range t.Top(nv, 5) {
				fmt.Printf("  %-8s %12d\n", e.Opcode, e.Count)
			}
		}
	default:
		fail(fmt.Errorf("unknown tool %q", *toolName))
	}
	var nv *nvbit.NVBit
	if tool != nil {
		if nv, err = nvbit.Attach(api, tool); err != nil {
			fail(err)
		}
	}

	ctx, err := api.CtxCreate()
	if err != nil {
		fail(err)
	}

	start := time.Now()
	kind, name, _ := strings.Cut(*workload, ":")
	switch kind {
	case "specaccel":
		var b *specaccel.Benchmark
		for _, cand := range specaccel.Benchmarks() {
			if cand.Name == name {
				b = cand
			}
		}
		if b == nil {
			fail(fmt.Errorf("unknown specaccel benchmark %q", name))
		}
		if err := b.Run(ctx, size); err != nil {
			fail(err)
		}
	case "ml":
		var net *mlsuite.Network
		for _, cand := range mlsuite.Networks() {
			if cand.Name == name {
				c := cand
				net = &c
			}
		}
		if net == nil {
			fail(fmt.Errorf("unknown ML network %q", name))
		}
		if _, err := mlsuite.Run(ctx, nil, *net); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown workload kind %q (want specaccel: or ml:)", kind))
	}
	elapsed := time.Since(start)
	api.Close()

	st := api.Device().Stats()
	fmt.Printf("workload %s: %d launches, %d warp instructions, %d cycles, %.2fs wall\n",
		*workload, st.Launches, st.WarpInstrs, st.Cycles, elapsed.Seconds())
	if report != nil {
		report(nv)
	}
	if nv != nil {
		js := nv.JITStats()
		fmt.Printf("jit: lifted %d funcs / %d instrs, %d trampolines, %v total (%v disasm)\n",
			js.FunctionsLifted, js.InstrsLifted, js.TrampolinesEmitted, js.Total().Round(time.Microsecond), js.Disassemble.Round(time.Microsecond))
	}
}
