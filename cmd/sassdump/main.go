// Command sassdump is the nvdisasm analog: it compiles a PTX source file (or
// parses a cubin device binary) and prints the resulting synthetic SASS with
// per-function metadata — register budget, parameter layout, basic blocks
// and source-line correlation.
//
// Usage:
//
//	sassdump -family volta kernel.ptx
//	sassdump -cubin library.cubin
//	sassdump -nvlib            # dump the bundled accelerated library
package main

import (
	"flag"
	"fmt"
	"os"

	"nvbitgo/internal/driver"
	"nvbitgo/internal/ptx"
	"nvbitgo/internal/sass"
	"nvbitgo/internal/workloads/nvlib"
)

func main() {
	familyName := flag.String("family", "volta", "target family: kepler, maxwell, pascal, volta")
	cubin := flag.Bool("cubin", false, "input is a cubin device binary, not PTX")
	dumpLib := flag.Bool("nvlib", false, "dump the bundled accelerated library instead of a file")
	flag.Parse()

	fam, ok := map[string]sass.Family{
		"kepler": sass.Kepler, "maxwell": sass.Maxwell,
		"pascal": sass.Pascal, "volta": sass.Volta,
	}[*familyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "sassdump: unknown family %q\n", *familyName)
		os.Exit(2)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sassdump:", err)
		os.Exit(1)
	}

	var image []byte
	switch {
	case *dumpLib:
		img, err := nvlib.CubinFor(fam)
		if err != nil {
			fail(err)
		}
		image = img
		*cubin = true
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: sassdump [-family F] [-cubin] <file>")
		os.Exit(2)
	default:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		image = data
	}

	if *cubin {
		c, err := driver.ParseCubin(image)
		if err != nil {
			fail(err)
		}
		fmt.Printf("// cubin %s, family %v, %d functions\n", c.Name, c.Family, len(c.Funcs))
		codec := sass.CodecFor(c.Family)
		for _, f := range c.Funcs {
			insts, err := codec.DecodeAll(f.Code)
			if err != nil {
				fail(err)
			}
			dumpFunc(f.Name, f.Entry, f.NumRegs, f.ParamBytes, insts, f.Lines)
		}
		return
	}

	m, err := ptx.Compile(flag.Arg(0), string(image), fam)
	if err != nil {
		fail(err)
	}
	fmt.Printf("// module %s, family %v, %d functions\n", m.Name, m.Family, len(m.Funcs))
	for _, f := range m.Funcs {
		dumpFunc(f.Name, f.Entry, f.NumRegs, f.ParamBytes, f.Insts, f.Lines)
	}
}

func dumpFunc(name string, entry bool, numRegs, paramBytes int, insts []sass.Inst, lines []int32) {
	kind := ".func"
	if entry {
		kind = ".entry"
	}
	fmt.Printf("\n%s %s  // %d registers, %d param bytes, %d instructions\n",
		kind, name, numRegs, paramBytes, len(insts))
	blocks, ok := sass.BasicBlocks(insts)
	leaders := map[int]bool{}
	if ok {
		for _, b := range blocks {
			leaders[b.Start] = true
		}
	} else {
		fmt.Println("  // indirect control flow: flat view only")
	}
	for i, in := range insts {
		if leaders[i] && i != 0 {
			fmt.Printf(".L%x:\n", i)
		}
		line := ""
		if i < len(lines) && lines[i] > 0 {
			line = fmt.Sprintf("  // line %d", lines[i])
		}
		fmt.Printf("  /*%04x*/  %-50s%s\n", i, sass.Format(in), line)
	}
}
