// Command nvbitd is the multi-tenant instrumentation daemon: it owns a
// pool of simulated devices and serves concurrent nvbit-run -connect
// sessions over a unix socket (docs/nvbitd.md). Each session picks a tool
// from the same registry nvbit-run uses, gets its own context and channel
// streams, and competes for SM capacity under the driver's fair-share
// gate; when the admission queue is full, new work is load-shed with a
// typed overload error rather than queued without bound.
//
// Every flag has an NVBIT_* environment fallback (flag > env > default),
// like nvbit-run.
//
// Exit codes:
//
//	0  clean shutdown (SIGINT/SIGTERM)
//	1  startup or serve failure
//	64 command-line usage error
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"nvbitgo/internal/cliconf"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/nvbitd"
	"nvbitgo/internal/sass"
	"nvbitgo/nvbit"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 64
)

// daemonConfig is every nvbitd flag; flags_test.go keeps the table in
// docs/nvbitd.md in sync with these declarations.
type daemonConfig struct {
	socket     *string
	devices    *int
	queueLimit *int
	familyName *string
	schedName  *string
	cacheDir   *string
	inject     *string
	quiet      *bool
}

func newFlags(fs *flag.FlagSet) (*daemonConfig, *cliconf.Set) {
	cc := cliconf.New(fs)
	c := &daemonConfig{
		socket:     cc.String("socket", "nvbitd.sock", "unix socket path to serve on"),
		devices:    cc.Int("devices", 1, "device-pool size; sessions are placed on the least-loaded device"),
		queueLimit: cc.Int("queue-limit", -1, "admission queue bound per device before load-shedding (-1 = driver default)"),
		familyName: cc.String("family", "volta", "device family for every pool device"),
		schedName:  cc.String("scheduler", "sequential", "CTA scheduler: sequential or parallel (one worker per SM)"),
		cacheDir:   cc.String("jit-cache", "", "persist instrumented code to this directory, shared by all sessions"),
		inject:     cc.String("inject", "trampoline", "default injection codegen mode for sessions: trampoline, full-save, or inline"),
		quiet:      cc.Bool("quiet", false, "suppress per-session log lines"),
	}
	return c, cc
}

func main() {
	fs := flag.NewFlagSet("nvbitd", flag.ContinueOnError)
	c, cc := newFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: nvbitd [flags]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), `
clients connect with: nvbit-run -connect <socket> [-tool ...] [-workload ...]

exit codes:
  0   clean shutdown (SIGINT/SIGTERM)
  1   startup or serve failure
  64  command-line usage error`)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(exitOK)
		}
		os.Exit(exitUsage)
	}
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "nvbitd:", err)
		os.Exit(exitUsage)
	}
	if err := cc.Resolve(); err != nil {
		usage(err)
	}

	fam, ok := map[string]sass.Family{
		"kepler": sass.Kepler, "maxwell": sass.Maxwell,
		"pascal": sass.Pascal, "volta": sass.Volta,
	}[*c.familyName]
	if !ok {
		usage(fmt.Errorf("unknown family %q", *c.familyName))
	}
	sched, err := gpu.ParseScheduler(*c.schedName)
	if err != nil {
		usage(err)
	}
	if *c.devices < 1 {
		usage(fmt.Errorf("-devices must be at least 1, got %d", *c.devices))
	}
	if _, err := nvbit.ParseInjectionMode(*c.inject); err != nil {
		usage(err)
	}

	logger := log.New(os.Stderr, "nvbitd: ", log.LstdFlags)
	cfg := nvbitd.Config{
		Family:     fam,
		Scheduler:  sched,
		Devices:    *c.devices,
		QueueLimit: *c.queueLimit,
		CacheDir:   *c.cacheDir,
		Inject:     *c.inject,
	}
	if !*c.quiet {
		cfg.Log = logger
	}
	srv, err := nvbitd.NewServer(cfg)
	if err != nil {
		logger.Println(err)
		os.Exit(exitFailure)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("received %v, shutting down", s)
		srv.Close()
	}()

	logger.Printf("serving %d %s device(s) on %s (scheduler %v, queue limit %d)",
		*c.devices, *c.familyName, *c.socket, sched, *c.queueLimit)
	if err := srv.ListenAndServe(*c.socket); err != nil {
		logger.Println(err)
		os.Exit(exitFailure)
	}
	os.Exit(exitOK)
}
