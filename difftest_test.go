package main_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/cachesim"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/itrace"
	"nvbitgo/internal/tools/memcheck"
	"nvbitgo/internal/tools/memtrace"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

// The differential instrumentation suite: liveness-minimal save sets are a
// pure performance optimization, so every in-tree tool must produce output
// byte-identical to the ForceFullSaveSet ablation, under both schedulers.
// The report closures mirror cmd/nvbit-run so the comparison covers what a
// user actually sees.

// diffTools builds each tool fresh per run (tools carry state) together
// with its nvbit-run-style report.
var diffTools = map[string]func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)){
	"instrcount": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := instrcount.New()
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			fmt.Fprintf(w, "thread-level instructions: app %d, libraries %d (%.1f%% in libraries)\n",
				t.AppInstrs(nv), t.LibInstrs(nv), 100*t.LibraryFraction(nv))
		}
	},
	"ophisto": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := ophisto.New(false)
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			for _, e := range t.Top(nv, 10) {
				fmt.Fprintf(w, "%-8s %12d\n", e.Opcode, e.Count)
			}
		}
	},
	"itrace": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := itrace.New(1 << 20)
		t.Policy = nvbit.ChannelBlock
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			kernels := map[uint32]bool{}
			for _, r := range t.Records {
				kernels[r.KernelID] = true
			}
			fmt.Fprintf(w, "trace: %d warp-level records across %d kernels, %d dropped\n",
				len(t.Records), len(kernels), t.Dropped())
		}
	},
	"memtrace": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := memtrace.New(1 << 16)
		t.Policy = nvbit.ChannelBlock
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			var lanes uint64
			for _, r := range t.Records {
				for m := r.ExecMask; m != 0; m &= m - 1 {
					lanes++
				}
			}
			st := t.Stats()
			fmt.Fprintf(w, "memtrace: %d warp-level accesses (%d lane addresses), %d dropped, %d bytes shipped\n",
				len(t.Records), lanes, st.Dropped, st.BytesShipped)
		}
	},
	"memcheck": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := memcheck.New(1 << 20)
		return t, func(w io.Writer, nv *nvbit.NVBit) { t.Report(w) }
	},
	"cachesim": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		cfg := cachesim.DefaultConfig()
		// Block backpressure: drops under load (e.g. -race) would make the
		// replayed stream — and thus the report — timing-dependent.
		cfg.Policy = nvbit.ChannelBlock
		t := cachesim.New(cfg)
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			st := t.Stats()
			fmt.Fprintf(w, "cache replay: %d accesses, L1 %.1f%% hit, L2 %d hits / %d misses, %d dropped\n",
				st.Accesses, 100*st.L1HitRate(), st.L2Hits, st.L2Misses, st.Dropped)
		}
	},
}

// diffBenchmark returns the workload the differential runs execute.
func diffBenchmark(t *testing.T) *specaccel.Benchmark {
	t.Helper()
	for _, b := range specaccel.Benchmarks() {
		if b.Name == "cg" {
			return b
		}
	}
	t.Fatal("specaccel benchmark cg not found")
	return nil
}

// diffRun executes the workload under one tool/save-mode/scheduler triple
// and returns the tool's report output plus the mean saved registers per
// trampoline. Extra attach options (e.g. WithJITCache) apply on top.
func diffRun(t *testing.T, toolName string, fullSave bool, sched gpusim.SchedulerKind, extra ...nvbit.Option) (string, float64) {
	t.Helper()
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool, report := diffTools[toolName]()
	opts := append([]nvbit.Option{nvbit.WithScheduler(sched)}, extra...)
	nv, err := nvbit.Attach(api, tool, opts...)
	if err != nil {
		t.Fatal(err)
	}
	nv.ForceFullSaveSet(fullSave)
	ctx, err := api.CtxCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := diffBenchmark(t).Run(ctx, specaccel.Small); err != nil {
		t.Fatal(err)
	}
	api.Close() // fires AtTerm: channel tools drain before reporting
	var buf bytes.Buffer
	report(&buf, nv)

	js := nv.JITStats()
	if js.TrampolinesEmitted == 0 {
		t.Fatalf("%s: no trampolines emitted", toolName)
	}
	return buf.String(), js.AvgSavedRegs()
}

// quickCounter reproduces the quickstart example's tool (Listing 1): one
// atomic bump per thread-level instruction.
type quickCounter struct {
	counter uint64
}

const quickToolPTX = `
.toolfunc count_instrs(.param .u64 counter)
{
	.reg .u64 %rd<4>;
	ld.param.u64 %rd0, [counter];
	mov.u64 %rd2, 1;
	red.global.add.u64 [%rd0], %rd2;
	ret;
}
`

func (t *quickCounter) AtInit(n *nvbit.NVBit) {
	if err := n.RegisterToolPTX(quickToolPTX); err != nil {
		panic(err)
	}
	var err error
	if t.counter, err = n.Malloc(8); err != nil {
		panic(err)
	}
}

func (t *quickCounter) AtTerm(*nvbit.NVBit) {}

func (t *quickCounter) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	f := p.Launch.Func
	if n.IsInstrumented(f) {
		return
	}
	insts, err := n.GetInstrs(f)
	if err != nil {
		panic(err)
	}
	for _, i := range insts {
		n.InsertCallArgs(i, "count_instrs", nvbit.IPointBefore, nvbit.ArgConst64(t.counter))
	}
}

const quickSaxpyPTX = `
.visible .entry saxpy(.param .u64 x, .param .u64 y, .param .f32 a, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<6>;
	.reg .f32 %f<4>;
	.reg .pred %p<2>;
	mov.u32 %r0, %ctaid.x;
	mov.u32 %r1, %ntid.x;
	mov.u32 %r2, %tid.x;
	mad.lo.u32 %r3, %r0, %r1, %r2;
	ld.param.u32 %r4, [n];
	setp.ge.u32 %p0, %r3, %r4;
	@%p0 exit;
	ld.param.u64 %rd0, [x];
	ld.param.u64 %rd2, [y];
	mul.wide.u32 %rd4, %r3, 4;
	add.u64 %rd0, %rd0, %rd4;
	add.u64 %rd2, %rd2, %rd4;
	ld.global.f32 %f0, [%rd0];
	ld.global.f32 %f1, [%rd2];
	ld.param.f32 %f2, [a];
	fma.rn.f32 %f1, %f2, %f0, %f1;
	st.global.f32 [%rd2], %f1;
	exit;
}
`

// runQuickstart attaches the instruction counter to the quickstart saxpy
// and returns the counted instructions, the mean saved registers per
// trampoline, and the kernel's register high-water mark.
func runQuickstart(t *testing.T, fullSave bool) (count uint64, avgSaved float64, maxRegs int) {
	t.Helper()
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool := &quickCounter{}
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		t.Fatal(err)
	}
	nv.ForceFullSaveSet(fullSave)
	ctx, err := api.CtxCreate()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("saxpy", quickSaxpyPTX)
	if err != nil {
		t.Fatal(err)
	}
	f, err := mod.GetFunction("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	x, _ := ctx.MemAlloc(4 * n)
	y, _ := ctx.MemAlloc(4 * n)
	params, err := gpusim.PackParams(f, x, y, float32(2.0), uint32(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchKernel(f, gpusim.D1(n/256), gpusim.D1(256), 0, params); err != nil {
		t.Fatal(err)
	}
	count, err = nv.ReadU64(tool.counter)
	if err != nil {
		t.Fatal(err)
	}
	return count, nv.JITStats().AvgSavedRegs(), f.MaxRegs()
}

// TestQuickstartSaveSetBelowMaxRegs is the paper-facing acceptance check:
// instrumenting the quickstart saxpy with the instruction counter, the mean
// saved-register count per trampoline is strictly below the function's
// register high-water mark, with an identical instruction count to the
// full-save ablation.
func TestQuickstartSaveSetBelowMaxRegs(t *testing.T) {
	minCount, avgMin, maxRegs := runQuickstart(t, false)
	fullCount, avgFull, _ := runQuickstart(t, true)
	if minCount != fullCount {
		t.Fatalf("instruction counts diverge: minimal %d, full %d", minCount, fullCount)
	}
	if minCount == 0 {
		t.Fatal("no instructions counted")
	}
	if avgMin >= float64(maxRegs) {
		t.Fatalf("mean saved regs per trampoline %.1f, want strictly below MaxRegs %d", avgMin, maxRegs)
	}
	if avgMin >= avgFull {
		t.Fatalf("liveness sizing (%.1f regs/site) did not improve on the full save (%.1f)", avgMin, avgFull)
	}
}

// TestDifferentialSaveSets is the end-to-end guarantee behind the liveness
// optimization: for all six tools and both schedulers, minimal and full
// save sets yield identical reports.
func TestDifferentialSaveSets(t *testing.T) {
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	for toolName := range diffTools {
		for schedName, sched := range scheds {
			toolName, schedName, sched := toolName, schedName, sched
			t.Run(toolName+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				minimal, avgMin := diffRun(t, toolName, false, sched)
				full, avgFull := diffRun(t, toolName, true, sched)
				if minimal != full {
					t.Errorf("output diverges between minimal and full save sets:\nminimal:\n%s\nfull:\n%s", minimal, full)
				}
				if minimal == "" {
					t.Error("empty report")
				}
				// The minimal runs must actually shrink the save sets,
				// not merely match output.
				if avgMin >= avgFull {
					t.Errorf("liveness sizing saved %.1f regs/site on average, full save %.1f — no reduction", avgMin, avgFull)
				}
			})
		}
	}
}
