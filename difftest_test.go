package main_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/internal/tools/cachesim"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/itrace"
	"nvbitgo/internal/tools/memcheck"
	"nvbitgo/internal/tools/memtrace"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

// The differential instrumentation suite: liveness-minimal save sets are a
// pure performance optimization, so every in-tree tool must produce output
// byte-identical to the ForceFullSaveSet ablation, under both schedulers.
// The report closures mirror cmd/nvbit-run so the comparison covers what a
// user actually sees.

// diffTools builds each tool fresh per run (tools carry state) together
// with its nvbit-run-style report.
var diffTools = map[string]func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)){
	"instrcount": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := instrcount.New()
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			fmt.Fprintf(w, "thread-level instructions: app %d, libraries %d (%.1f%% in libraries)\n",
				t.AppInstrs(nv), t.LibInstrs(nv), 100*t.LibraryFraction(nv))
		}
	},
	"ophisto": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := ophisto.New(false)
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			for _, e := range t.Top(nv, 10) {
				fmt.Fprintf(w, "%-8s %12d\n", e.Opcode, e.Count)
			}
		}
	},
	"itrace": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := itrace.New(1 << 20)
		t.Policy = nvbit.ChannelBlock
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			kernels := map[uint32]bool{}
			for _, r := range t.Records {
				kernels[r.KernelID] = true
			}
			fmt.Fprintf(w, "trace: %d warp-level records across %d kernels, %d dropped\n",
				len(t.Records), len(kernels), t.Dropped())
		}
	},
	"memtrace": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := memtrace.New(1 << 16)
		t.Policy = nvbit.ChannelBlock
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			var lanes uint64
			for _, r := range t.Records {
				for m := r.ExecMask; m != 0; m &= m - 1 {
					lanes++
				}
			}
			st := t.Stats()
			fmt.Fprintf(w, "memtrace: %d warp-level accesses (%d lane addresses), %d dropped, %d bytes shipped\n",
				len(t.Records), lanes, st.Dropped, st.BytesShipped)
		}
	},
	"memcheck": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		t := memcheck.New(1 << 20)
		return t, func(w io.Writer, nv *nvbit.NVBit) { t.Report(w) }
	},
	"cachesim": func() (nvbit.Tool, func(io.Writer, *nvbit.NVBit)) {
		cfg := cachesim.DefaultConfig()
		// Block backpressure: drops under load (e.g. -race) would make the
		// replayed stream — and thus the report — timing-dependent.
		cfg.Policy = nvbit.ChannelBlock
		t := cachesim.New(cfg)
		return t, func(w io.Writer, nv *nvbit.NVBit) {
			st := t.Stats()
			fmt.Fprintf(w, "cache replay: %d accesses, L1 %.1f%% hit, L2 %d hits / %d misses, %d dropped\n",
				st.Accesses, 100*st.L1HitRate(), st.L2Hits, st.L2Misses, st.Dropped)
		}
	},
}

// diffBenchmark returns the workload the differential runs execute.
func diffBenchmark(t *testing.T) *specaccel.Benchmark {
	t.Helper()
	for _, b := range specaccel.Benchmarks() {
		if b.Name == "cg" {
			return b
		}
	}
	t.Fatal("specaccel benchmark cg not found")
	return nil
}

// diffRun executes the workload under one tool/injection-mode/scheduler
// triple and returns the tool's report output plus the run's JIT stats.
// Extra attach options (e.g. WithJITCache) apply on top.
func diffRun(t *testing.T, toolName string, mode nvbit.InjectionMode, sched gpusim.SchedulerKind, extra ...nvbit.Option) (string, nvbit.JITStats) {
	t.Helper()
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool, report := diffTools[toolName]()
	opts := append([]nvbit.Option{
		nvbit.WithScheduler(sched), nvbit.WithInjectionMode(mode),
	}, extra...)
	nv, err := nvbit.Attach(api, tool, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := diffBenchmark(t).Run(ctx, specaccel.Small); err != nil {
		t.Fatal(err)
	}
	api.Close() // fires AtTerm: channel tools drain before reporting
	var buf bytes.Buffer
	report(&buf, nv)

	js := nv.JITStats()
	if mode == nvbit.InjectInline {
		// Inline mode may splice any mix of sites; the rest fall back to
		// trampolines. Zero of both means nothing was instrumented.
		if js.TrampolinesEmitted+js.InlinedSites == 0 {
			t.Fatalf("%s: no instrumentation sites generated", toolName)
		}
	} else if js.TrampolinesEmitted == 0 {
		t.Fatalf("%s: no trampolines emitted", toolName)
	}
	return buf.String(), js
}

// quickCounter reproduces the quickstart example's tool (Listing 1): one
// atomic bump per thread-level instruction.
type quickCounter struct {
	counter uint64
}

const quickToolPTX = `
.toolfunc count_instrs(.param .u64 counter)
{
	.reg .u64 %rd<4>;
	ld.param.u64 %rd0, [counter];
	mov.u64 %rd2, 1;
	red.global.add.u64 [%rd0], %rd2;
	ret;
}
`

func (t *quickCounter) AtInit(n *nvbit.NVBit) {
	if err := n.RegisterToolPTX(quickToolPTX); err != nil {
		panic(err)
	}
	var err error
	if t.counter, err = n.Malloc(8); err != nil {
		panic(err)
	}
}

func (t *quickCounter) AtTerm(*nvbit.NVBit) {}

func (t *quickCounter) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	f := p.Launch.Func
	if n.IsInstrumented(f) {
		return
	}
	insts, err := n.GetInstrs(f)
	if err != nil {
		panic(err)
	}
	for _, i := range insts {
		n.InsertCallArgs(i, "count_instrs", nvbit.IPointBefore, nvbit.ArgConst64(t.counter))
	}
}

const quickSaxpyPTX = `
.visible .entry saxpy(.param .u64 x, .param .u64 y, .param .f32 a, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<6>;
	.reg .f32 %f<4>;
	.reg .pred %p<2>;
	mov.u32 %r0, %ctaid.x;
	mov.u32 %r1, %ntid.x;
	mov.u32 %r2, %tid.x;
	mad.lo.u32 %r3, %r0, %r1, %r2;
	ld.param.u32 %r4, [n];
	setp.ge.u32 %p0, %r3, %r4;
	@%p0 exit;
	ld.param.u64 %rd0, [x];
	ld.param.u64 %rd2, [y];
	mul.wide.u32 %rd4, %r3, 4;
	add.u64 %rd0, %rd0, %rd4;
	add.u64 %rd2, %rd2, %rd4;
	ld.global.f32 %f0, [%rd0];
	ld.global.f32 %f1, [%rd2];
	ld.param.f32 %f2, [a];
	fma.rn.f32 %f1, %f2, %f0, %f1;
	st.global.f32 [%rd2], %f1;
	exit;
}
`

// runQuickstart attaches the instruction counter to the quickstart saxpy
// and returns the counted instructions, the mean saved registers per
// trampoline, and the kernel's register high-water mark.
func runQuickstart(t *testing.T, fullSave bool) (count uint64, avgSaved float64, maxRegs int) {
	t.Helper()
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool := &quickCounter{}
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		t.Fatal(err)
	}
	nv.ForceFullSaveSet(fullSave)
	ctx, err := api.CtxCreate()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("saxpy", quickSaxpyPTX)
	if err != nil {
		t.Fatal(err)
	}
	f, err := mod.GetFunction("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	x, _ := ctx.MemAlloc(4 * n)
	y, _ := ctx.MemAlloc(4 * n)
	params, err := gpusim.PackParams(f, x, y, float32(2.0), uint32(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchKernel(f, gpusim.D1(n/256), gpusim.D1(256), 0, params); err != nil {
		t.Fatal(err)
	}
	count, err = nv.ReadU64(tool.counter)
	if err != nil {
		t.Fatal(err)
	}
	return count, nv.JITStats().AvgSavedRegs(), f.MaxRegs()
}

// TestQuickstartSaveSetBelowMaxRegs is the paper-facing acceptance check:
// instrumenting the quickstart saxpy with the instruction counter, the mean
// saved-register count per trampoline is strictly below the function's
// register high-water mark, with an identical instruction count to the
// full-save ablation.
func TestQuickstartSaveSetBelowMaxRegs(t *testing.T) {
	minCount, avgMin, maxRegs := runQuickstart(t, false)
	fullCount, avgFull, _ := runQuickstart(t, true)
	if minCount != fullCount {
		t.Fatalf("instruction counts diverge: minimal %d, full %d", minCount, fullCount)
	}
	if minCount == 0 {
		t.Fatal("no instructions counted")
	}
	if avgMin >= float64(maxRegs) {
		t.Fatalf("mean saved regs per trampoline %.1f, want strictly below MaxRegs %d", avgMin, maxRegs)
	}
	if avgMin >= avgFull {
		t.Fatalf("liveness sizing (%.1f regs/site) did not improve on the full save (%.1f)", avgMin, avgFull)
	}
}

// TestDifferentialInlineInjection is the same end-to-end guarantee for the
// inline injection strategy: for all six tools and both schedulers, splicing
// tool bodies into dead registers (with per-site trampoline fallback) yields
// reports byte-identical to pure trampoline codegen. At least one site must
// actually inline somewhere across the matrix, or the mode silently
// degenerated to the thing it is tested against.
func TestDifferentialInlineInjection(t *testing.T) {
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	var mu sync.Mutex
	inlined := 0
	t.Run("tools", func(t *testing.T) {
		for toolName := range diffTools {
			for schedName, sched := range scheds {
				toolName, schedName, sched := toolName, schedName, sched
				t.Run(toolName+"/"+schedName, func(t *testing.T) {
					t.Parallel()
					tramp, jsTramp := diffRun(t, toolName, nvbit.InjectTrampoline, sched)
					inline, jsInline := diffRun(t, toolName, nvbit.InjectInline, sched)
					if inline != tramp {
						t.Errorf("output diverges between inline and trampoline injection:\ntrampoline:\n%s\ninline:\n%s", tramp, inline)
					}
					if tramp == "" {
						t.Error("empty report")
					}
					if jsTramp.InlinedSites != 0 {
						t.Errorf("trampoline mode spliced %d inline sites", jsTramp.InlinedSites)
					}
					mu.Lock()
					inlined += jsInline.InlinedSites
					mu.Unlock()
				})
			}
		}
	})
	if inlined == 0 {
		t.Fatal("inline mode never spliced a single site across any tool or scheduler")
	}
}

// TestDifferentialSaveSets is the end-to-end guarantee behind the liveness
// optimization: for all six tools and both schedulers, minimal and full
// save sets yield identical reports.
func TestDifferentialSaveSets(t *testing.T) {
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	for toolName := range diffTools {
		for schedName, sched := range scheds {
			toolName, schedName, sched := toolName, schedName, sched
			t.Run(toolName+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				minimal, jsMin := diffRun(t, toolName, nvbit.InjectTrampoline, sched)
				full, jsFull := diffRun(t, toolName, nvbit.InjectFullSave, sched)
				avgMin, avgFull := jsMin.AvgSavedRegs(), jsFull.AvgSavedRegs()
				if minimal != full {
					t.Errorf("output diverges between minimal and full save sets:\nminimal:\n%s\nfull:\n%s", minimal, full)
				}
				if minimal == "" {
					t.Error("empty report")
				}
				// The minimal runs must actually shrink the save sets,
				// not merely match output.
				if avgMin >= avgFull {
					t.Errorf("liveness sizing saved %.1f regs/site on average, full save %.1f — no reduction", avgMin, avgFull)
				}
			})
		}
	}
}

// boundaryCounter instruments only LOP (logic-op) instructions, so the
// boundary kernels below expose exactly one instrumentation site. Its tool
// function is a tally with a deliberately padded working set (six u64
// pairs) so that the baseline kernel's spare dead registers do not already
// cover it and the trampoline→inline flip lands inside the probe range.
type boundaryCounter struct {
	counter uint64
}

const boundaryToolPTX = `
.toolfunc bnd_count(.param .u64 counter)
{
	.reg .u64 %rd<12>;
	ld.param.u64 %rd0, [counter];
	mov.u64 %rd2, 7;
	mov.u64 %rd4, 7;
	mov.u64 %rd6, 7;
	mov.u64 %rd8, 7;
	mov.u64 %rd10, 1;
	red.global.add.u64 [%rd0], %rd10;
	ret;
}
`

func (t *boundaryCounter) AtInit(n *nvbit.NVBit) {
	if err := n.RegisterToolPTX(boundaryToolPTX); err != nil {
		panic(err)
	}
	var err error
	if t.counter, err = n.Malloc(8); err != nil {
		panic(err)
	}
}

func (t *boundaryCounter) AtTerm(*nvbit.NVBit) {}

func (t *boundaryCounter) AtCUDACall(n *nvbit.NVBit, exit bool, cbid nvbit.CBID, name string, p *nvbit.CallParams) {
	if exit || cbid != nvbit.CBLaunchKernel {
		return
	}
	f := p.Launch.Func
	if n.IsInstrumented(f) {
		return
	}
	insts, err := n.GetInstrs(f)
	if err != nil {
		panic(err)
	}
	for _, i := range insts {
		if i.GetOpcode() == "LOP" {
			n.InsertCallArgs(i, "bnd_count", nvbit.IPointBefore, nvbit.ArgConst64(t.counter))
		}
	}
}

// boundaryPTX builds a kernel with exactly one LOP site and `dead` extra
// registers that are defined early and never read again — dead across the
// site. Every other register is defined before the AND and used after it, so
// the PTX compiler's linear allocator (no live-range reuse) makes each
// increment of `dead` grow the site's dead-register pool by exactly one
// physical register.
func boundaryPTX(dead int) string {
	var b strings.Builder
	b.WriteString(".visible .entry bnd(.param .u64 out)\n{\n")
	fmt.Fprintf(&b, "\t.reg .u32 %%r<%d>;\n", dead+4)
	b.WriteString("\t.reg .u64 %rd<4>;\n")
	b.WriteString("\tmov.u32 %r0, %tid.x;\n")
	b.WriteString("\tld.param.u64 %rd0, [out];\n")
	b.WriteString("\tmul.wide.u32 %rd2, %r0, 4;\n")
	b.WriteString("\tadd.u64 %rd0, %rd0, %rd2;\n")
	b.WriteString("\tmov.u32 %r1, 5;\n")
	for k := 0; k < dead; k++ {
		fmt.Fprintf(&b, "\tmov.u32 %%r%d, 9;\n", k+3)
	}
	b.WriteString("\tand.b32 %r2, %r0, 63;\n") // the single instrumented site
	b.WriteString("\tadd.u32 %r2, %r2, %r1;\n")
	b.WriteString("\tadd.u64 %rd2, %rd2, 8;\n") // keeps %rd2 live across the site
	b.WriteString("\tst.global.u32 [%rd0], %r2;\n")
	b.WriteString("\texit;\n}\n")
	return b.String()
}

// runBoundary launches one boundary kernel (2 CTAs x 32 threads) under the
// given injection mode and returns the tally plus JIT stats.
func runBoundary(t *testing.T, dead int, mode nvbit.InjectionMode, sched gpusim.SchedulerKind) (uint64, nvbit.JITStats) {
	t.Helper()
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		t.Fatal(err)
	}
	tool := &boundaryCounter{}
	nv, err := nvbit.Attach(api, tool, nvbit.WithScheduler(sched), nvbit.WithInjectionMode(mode))
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := api.CtxCreate()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ctx.ModuleLoadPTX("bnd", boundaryPTX(dead))
	if err != nil {
		t.Fatal(err)
	}
	f, err := mod.GetFunction("bnd")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := ctx.MemAlloc(4 * 64)
	params, err := gpusim.PackParams(f, out)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchKernel(f, gpusim.D1(2), gpusim.D1(32), 0, params); err != nil {
		t.Fatal(err)
	}
	count, err := nv.ReadU64(tool.counter)
	if err != nil {
		t.Fatal(err)
	}
	return count, nv.JITStats()
}

// TestInlineFallbackBoundary pins the inline/trampoline decision to the exact
// register where it flips: with a dead-register pool one register short of
// what the tool body needs, inline mode must fall back to a trampoline; one
// register over, it must splice. Either side of the boundary, under either
// scheduler, the tally is identical — the fallback is invisible except in JIT
// stats.
func TestInlineFallbackBoundary(t *testing.T) {
	// Probe for the flip point: the smallest dead pool that lets the tally
	// body inline. Codegen is deterministic, so one scheduler suffices to
	// locate it; both schedulers then verify behavior on each side.
	flip := -1
	for d := 0; d <= 24; d++ {
		_, js := runBoundary(t, d, nvbit.InjectInline, gpusim.SchedulerSequential)
		if js.InlinedSites > 0 {
			flip = d
			break
		}
	}
	if flip < 0 {
		t.Fatal("tally never inlined with up to 24 spare dead registers")
	}
	if flip == 0 {
		t.Fatal("tally inlined with no padding dead registers; boundary not probeable")
	}
	scheds := map[string]gpusim.SchedulerKind{
		"sequential": gpusim.SchedulerSequential,
		"parallel":   gpusim.SchedulerParallelSM,
	}
	for schedName, sched := range scheds {
		schedName, sched := schedName, sched
		t.Run(schedName, func(t *testing.T) {
			for _, d := range []int{flip - 1, flip} {
				countTramp, jsTramp := runBoundary(t, d, nvbit.InjectTrampoline, sched)
				countInline, jsInline := runBoundary(t, d, nvbit.InjectInline, sched)
				if jsTramp.TrampolinesEmitted != 1 || jsTramp.InlinedSites != 0 {
					t.Fatalf("dead=%d: trampoline mode emitted %d trampolines, %d inline sites",
						d, jsTramp.TrampolinesEmitted, jsTramp.InlinedSites)
				}
				if d < flip {
					// One register short: the site must fall back.
					if jsInline.InlinedSites != 0 || jsInline.TrampolinesEmitted != 1 {
						t.Errorf("dead=%d (one short, %s): inline mode spliced %d sites, emitted %d trampolines; want pure fallback",
							d, schedName, jsInline.InlinedSites, jsInline.TrampolinesEmitted)
					}
				} else if jsInline.InlinedSites != 1 || jsInline.TrampolinesEmitted != 0 {
					t.Errorf("dead=%d (one over, %s): inline mode spliced %d sites, emitted %d trampolines; want pure inline",
						d, schedName, jsInline.InlinedSites, jsInline.TrampolinesEmitted)
				}
				if countInline != countTramp {
					t.Errorf("dead=%d (%s): tally diverges, inline %d vs trampoline %d",
						d, schedName, countInline, countTramp)
				}
				if countTramp == 0 {
					t.Error("no site visits counted")
				}
			}
		})
	}
}
