// Package main_test holds the benchmark harness: one testing.B benchmark per
// paper figure/table plus framework microbenchmarks and the ablations called
// out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure-level benchmarks run at Small scale so the bench suite stays fast;
// cmd/experiments regenerates the figures at the paper's sizes.
package main_test

import (
	"fmt"
	"testing"

	"nvbitgo/gpusim"
	"nvbitgo/internal/core"
	"nvbitgo/internal/driver"
	"nvbitgo/internal/experiments"
	"nvbitgo/internal/gpu"
	"nvbitgo/internal/ptx"
	"nvbitgo/internal/sass"
	"nvbitgo/internal/tools/instrcount"
	"nvbitgo/internal/tools/memdiv"
	"nvbitgo/internal/tools/memtrace"
	"nvbitgo/internal/tools/ophisto"
	"nvbitgo/internal/workloads/mlsuite"
	"nvbitgo/internal/workloads/specaccel"
	"nvbitgo/nvbit"
)

// --- figure-level benchmarks ---------------------------------------------------

// BenchmarkFig5JITOverhead regenerates the Figure 5 measurement (six-phase
// JIT-compilation overhead across the SpecAccel suite).
func BenchmarkFig5JITOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(specaccel.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 15 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkLibraryInstrFraction regenerates the Section 6.1 statistic
// (fraction of instructions inside precompiled libraries).
func BenchmarkLibraryInstrFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LibFraction()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkFig6MemDivergence regenerates Figure 6 (memory divergence with
// and without library instrumentation).
func BenchmarkFig6MemDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkFig7Histogram, BenchmarkFig8Slowdown and BenchmarkFig9SamplingError
// share the three-pass Fig789 harness; each validates its own figure's rows.
func BenchmarkFig7Histogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f7, _, _, err := experiments.Fig789(specaccel.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(f7) != 15 {
			b.Fatal("row count")
		}
	}
}

func BenchmarkFig8Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, f8, _, err := experiments.Fig789(specaccel.Small)
		if err != nil {
			b.Fatal(err)
		}
		var full float64
		for _, r := range f8 {
			full += r.Full
		}
		b.ReportMetric(full/15, "avg-full-slowdown-x")
	}
}

func BenchmarkFig9SamplingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, f9, err := experiments.Fig789(specaccel.Small)
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range f9 {
			avg += r.ErrPct
		}
		b.ReportMetric(avg/15, "avg-error-pct")
	}
}

// BenchmarkWFFTEmulation regenerates the Section 6.3 instruction-emulation
// comparison (hypothetical WFFT32 vs software FFT, instructions per warp).
func BenchmarkWFFTEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.WFFT()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ProxyPerWarp, "proxy-instrs-per-warp")
		b.ReportMetric(r.SoftwarePerWarp, "software-instrs-per-warp")
	}
}

// --- framework microbenchmarks --------------------------------------------------

const benchKernelPTX = `
.visible .entry bench(.param .u64 data, .param .u32 n)
{
	.reg .u32 %r<10>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	mov.u32 %r0, %ctaid.x;
	mov.u32 %r1, %ntid.x;
	mov.u32 %r2, %tid.x;
	mad.lo.u32 %r3, %r0, %r1, %r2;
	ld.param.u32 %r4, [n];
	setp.ge.u32 %p0, %r3, %r4;
	@%p0 exit;
	ld.param.u64 %rd0, [data];
	mul.wide.u32 %rd2, %r3, 4;
	add.u64 %rd0, %rd0, %rd2;
	ld.global.u32 %r5, [%rd0];
	mov.u32 %r6, 16;
LOOP:
	mad.lo.u32 %r5, %r5, %r3, %r6;
	sub.u32 %r6, %r6, 1;
	setp.gt.u32 %p0, %r6, 0;
	@%p0 bra LOOP;
	st.global.u32 [%rd0], %r5;
	exit;
}
`

// BenchmarkLifter measures phases 1-3 of the JIT pipeline: retrieving,
// disassembling and converting one kernel's code. Each iteration loads a
// fresh module (lifting is cached per function), so the device gets a large
// Volta code space to keep b.N unconstrained.
func BenchmarkLifter(b *testing.B) {
	cfg := gpusim.DefaultConfig(gpusim.Volta)
	cfg.CodeBytes = 64 << 20
	api, err := gpusim.NewWithConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tool := instrcount.New()
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod, err := ctx.ModuleLoadPTX(fmt.Sprintf("m%d", i), benchKernelPTX)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := mod.GetFunction("bench")
		insts, err := nv.GetInstrs(f)
		if err != nil {
			b.Fatal(err)
		}
		if len(insts) == 0 {
			b.Fatal("no instructions")
		}
	}
	b.ReportMetric(float64(nv.JITStats().InstrsLifted)/float64(b.N), "instrs/op")
}

// BenchmarkCodegen measures phase 5: trampoline generation for a fully
// instrumented kernel (one trampoline per instruction).
func BenchmarkCodegen(b *testing.B) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		b.Fatal(err)
	}
	tool := instrcount.New()
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	data, _ := ctx.MemAlloc(4 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod, err := ctx.ModuleLoadPTX(fmt.Sprintf("m%d", i), benchKernelPTX)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := mod.GetFunction("bench")
		params, _ := driver.PackParams(f, data, uint32(256))
		// First launch triggers lift+instrument+codegen+swap.
		if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
	}
	st := nv.JITStats()
	b.ReportMetric(float64(st.TrampolinesEmitted)/float64(b.N), "trampolines/op")
	b.ReportMetric(float64(st.CodeGen.Nanoseconds())/float64(st.TrampolinesEmitted), "codegen-ns/tramp")
}

// BenchmarkJITCache prices the instrumentation cache (docs/jitcache.md):
// one full attach→first-launch cycle of the bench kernel per iteration,
// cold (a fresh cache every iteration, so every object is generated and
// stored) vs warm (fresh attaches sharing one pre-populated cache, so
// lift and codegen are skipped entirely). The gap is what a cache hit
// saves; allocs/op shows the hit path's footprint.
func BenchmarkJITCache(b *testing.B) {
	iter := func(b *testing.B, cache *nvbit.JITCache) *nvbit.NVBit {
		api, err := gpusim.New(gpusim.Volta)
		if err != nil {
			b.Fatal(err)
		}
		nv, err := nvbit.Attach(api, instrcount.New(), nvbit.WithJITCache(cache))
		if err != nil {
			b.Fatal(err)
		}
		ctx, _ := api.CtxCreate()
		mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := mod.GetFunction("bench")
		data, _ := ctx.MemAlloc(4 * 256)
		params, _ := driver.PackParams(f, data, uint32(256))
		if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
		return nv
	}
	newCache := func(b *testing.B) *nvbit.JITCache {
		c, err := nvbit.NewJITCache("", 0)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	report := func(b *testing.B, hits, lookups, jitNs float64) {
		if lookups > 0 {
			b.ReportMetric(100*hits/lookups, "hit-%")
		}
		b.ReportMetric(jitNs/float64(b.N), "jit-ns/op")
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		var hits, lookups, jitNs float64
		for i := 0; i < b.N; i++ {
			js := iter(b, newCache(b)).JITStats()
			hits += float64(js.CacheHits)
			lookups += float64(js.CacheLookups)
			jitNs += float64(js.Total().Nanoseconds())
		}
		report(b, hits, lookups, jitNs)
	})
	b.Run("warm", func(b *testing.B) {
		cache := newCache(b)
		iter(b, cache) // populate
		b.ReportAllocs()
		b.ResetTimer()
		var hits, lookups, jitNs float64
		for i := 0; i < b.N; i++ {
			js := iter(b, cache).JITStats()
			hits += float64(js.CacheHits)
			lookups += float64(js.CacheLookups)
			jitNs += float64(js.Total().Nanoseconds())
		}
		b.StopTimer()
		report(b, hits, lookups, jitNs)
		if lookups > 0 && hits != lookups {
			b.Fatalf("warm iterations hit %v/%v lookups, want all", hits, lookups)
		}
	})
}

// BenchmarkSwap measures phase 6: the enable/disable code swap, whose cost
// the paper equates to a code-sized cudaMemcpy.
func BenchmarkSwap(b *testing.B) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		b.Fatal(err)
	}
	tool := instrcount.New()
	nv, err := nvbit.Attach(api, tool)
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mod.GetFunction("bench")
	data, _ := ctx.MemAlloc(4 * 256)
	params, _ := driver.PackParams(f, data, uint32(256))
	if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(256), 0, params); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nv.EnableInstrumented(f, i%2 == 0); err != nil {
			b.Fatal(err)
		}
		if err := ctx.LaunchKernel(f, gpusim.D1(1), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(f.NumWords * 16))
}

// BenchmarkDisassembler measures the raw family codec (the dominant Figure 5
// component) in isolation.
func BenchmarkDisassembler(b *testing.B) {
	for _, fam := range []sass.Family{sass.Kepler, sass.Volta} {
		fam := fam
		b.Run(fam.String(), func(b *testing.B) {
			m, err := ptx.Compile("m", benchKernelPTX, fam)
			if err != nil {
				b.Fatal(err)
			}
			codec := sass.CodecFor(fam)
			raw, err := codec.EncodeAll(m.Funcs[0].Insts)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codec.DecodeAll(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator measures raw uninstrumented simulation throughput.
// ReportAllocs tracks the interpreter's per-step allocation behavior: the
// dispatch loop itself must not allocate (allocs/op is per-launch setup —
// warp pools and the execution context — and stays flat as grids grow).
func BenchmarkSimulator(b *testing.B) {
	api, err := gpusim.New(gpusim.Volta)
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mod.GetFunction("bench")
	data, _ := ctx.MemAlloc(4 * 4096)
	params, _ := driver.PackParams(f, data, uint32(4096))
	b.ReportAllocs()
	b.ResetTimer()
	var warpInstrs uint64
	for i := 0; i < b.N; i++ {
		before := api.Device().Stats().WarpInstrs
		if err := ctx.LaunchKernel(f, gpusim.D1(16), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
		warpInstrs += api.Device().Stats().WarpInstrs - before
	}
	b.ReportMetric(float64(warpInstrs)/b.Elapsed().Seconds()/1e6, "Mwarpinstr/s")
}

// benchLaunch drives a 256-CTA launch of the bench kernel under the given
// scheduler; BenchmarkLaunchParallel vs BenchmarkLaunchSequential is the
// headline speedup of the per-SM parallel backend (≥ 2x expected on a
// machine with GOMAXPROCS ≥ 4; on one core the two are equivalent).
func benchLaunch(b *testing.B, sched gpusim.SchedulerKind) {
	const ctas, block = 256, 256
	cfg := gpusim.DefaultConfig(gpusim.Volta)
	cfg.Scheduler = sched
	api, err := gpusim.NewWithConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, _ := api.CtxCreate()
	mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mod.GetFunction("bench")
	data, _ := ctx.MemAlloc(4 * ctas * block)
	params, _ := driver.PackParams(f, data, uint32(ctas*block))
	// Warm the decode cache so iterations measure pure execution.
	if err := ctx.LaunchKernel(f, gpusim.D1(ctas), gpusim.D1(block), 0, params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var warpInstrs uint64
	for i := 0; i < b.N; i++ {
		before := api.Device().Stats().WarpInstrs
		if err := ctx.LaunchKernel(f, gpusim.D1(ctas), gpusim.D1(block), 0, params); err != nil {
			b.Fatal(err)
		}
		warpInstrs += api.Device().Stats().WarpInstrs - before
	}
	b.ReportMetric(float64(warpInstrs)/b.Elapsed().Seconds()/1e6, "Mwarpinstr/s")
}

func BenchmarkLaunchSequential(b *testing.B) { benchLaunch(b, gpusim.SchedulerSequential) }
func BenchmarkLaunchParallel(b *testing.B)   { benchLaunch(b, gpusim.SchedulerParallelSM) }

// --- ablations -------------------------------------------------------------------

// BenchmarkSaveSet reports what the per-site liveness analysis buys at code
// generation: trampoline length and saved registers per instrumentation
// site, liveness-minimal vs the full-register-file ablation.
func BenchmarkSaveSet(b *testing.B) {
	run := func(b *testing.B, fullSave bool) {
		var words, saved, sites float64
		for i := 0; i < b.N; i++ {
			api, err := gpusim.New(gpusim.Volta)
			if err != nil {
				b.Fatal(err)
			}
			tool := instrcount.New()
			nv, err := nvbit.Attach(api, tool)
			if err != nil {
				b.Fatal(err)
			}
			nv.ForceFullSaveSet(fullSave)
			ctx, _ := api.CtxCreate()
			mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
			if err != nil {
				b.Fatal(err)
			}
			f, _ := mod.GetFunction("bench")
			data, _ := ctx.MemAlloc(4 * 4096)
			params, _ := driver.PackParams(f, data, uint32(4096))
			if err := ctx.LaunchKernel(f, gpusim.D1(16), gpusim.D1(256), 0, params); err != nil {
				b.Fatal(err)
			}
			js := nv.JITStats()
			if js.TrampolinesEmitted == 0 {
				b.Fatal("no trampolines emitted")
			}
			words += float64(js.TrampolineWords)
			saved += float64(js.SavedRegs)
			sites += float64(js.TrampolinesEmitted)
		}
		b.ReportMetric(words/sites, "words/site")
		b.ReportMetric(saved/sites, "savedregs/site")
	}
	b.Run("liveness", func(b *testing.B) { run(b, false) })
	b.Run("full255", func(b *testing.B) { run(b, true) })
}

// BenchmarkSaveSetSizing compares trampoline execution cost with the minimal
// save set (what NVBit computes from the per-site register liveness) against
// always saving the full 255-register file — the design choice of Section 5.1.
func BenchmarkSaveSetSizing(b *testing.B) {
	run := func(b *testing.B, fullSave bool) uint64 {
		cfg := gpu.DefaultConfig(sass.Volta)
		api, err := driver.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tool := instrcount.New()
		nv, err := core.Attach(api, tool)
		if err != nil {
			b.Fatal(err)
		}
		nv.ForceFullSaveSet(fullSave)
		ctx, _ := api.CtxCreate()
		mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := mod.GetFunction("bench")
		data, _ := ctx.MemAlloc(4 * 4096)
		params, _ := driver.PackParams(f, data, uint32(4096))
		if err := ctx.LaunchKernel(f, gpusim.D1(16), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
		return api.Device().Stats().Cycles
	}
	b.Run("minimal", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, false)
		}
		b.ReportMetric(float64(c), "cycles")
	})
	b.Run("full255", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, true)
		}
		b.ReportMetric(float64(c), "cycles")
	})
}

// BenchmarkBBvsInstrCounting compares per-basic-block against per-instruction
// counting (the optimization sketched in the paper's Section 3): same
// answer, far fewer injected calls.
func BenchmarkBBvsInstrCounting(b *testing.B) {
	run := func(b *testing.B, perBB bool) uint64 {
		api, err := gpusim.New(gpusim.Volta)
		if err != nil {
			b.Fatal(err)
		}
		tool := instrcount.New()
		tool.PerBasicBlock = perBB
		nv, err := nvbit.Attach(api, tool)
		if err != nil {
			b.Fatal(err)
		}
		ctx, _ := api.CtxCreate()
		mod, err := ctx.ModuleLoadPTX("m", benchKernelPTX)
		if err != nil {
			b.Fatal(err)
		}
		f, _ := mod.GetFunction("bench")
		data, _ := ctx.MemAlloc(4 * 4096)
		params, _ := driver.PackParams(f, data, uint32(4096))
		if err := ctx.LaunchKernel(f, gpusim.D1(16), gpusim.D1(256), 0, params); err != nil {
			b.Fatal(err)
		}
		if tool.Total(nv) == 0 {
			b.Fatal("no counts")
		}
		return api.Device().Stats().Cycles
	}
	b.Run("per-instruction", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, false)
		}
		b.ReportMetric(float64(c), "cycles")
	})
	b.Run("per-basic-block", func(b *testing.B) {
		var c uint64
		for i := 0; i < b.N; i++ {
			c = run(b, true)
		}
		b.ReportMetric(float64(c), "cycles")
	})
}

// BenchmarkToolOverheads compares the execution cost of the paper's tools on
// one ML workload (tool bodies dominate; JIT overhead is negligible here).
func BenchmarkToolOverheads(b *testing.B) {
	net := mlsuite.Networks()[0] // AlexNet
	run := func(b *testing.B, mk func() nvbit.Tool) {
		for i := 0; i < b.N; i++ {
			api, err := gpusim.New(gpusim.Volta)
			if err != nil {
				b.Fatal(err)
			}
			if mk != nil {
				if _, err := nvbit.Attach(api, mk()); err != nil {
					b.Fatal(err)
				}
			}
			ctx, _ := api.CtxCreate()
			if _, err := mlsuite.Run(ctx, nil, net); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("native", func(b *testing.B) { run(b, nil) })
	b.Run("instrcount", func(b *testing.B) { run(b, func() nvbit.Tool { return instrcount.New() }) })
	b.Run("memdiv", func(b *testing.B) { run(b, func() nvbit.Tool { return memdiv.New() }) })
	b.Run("ophisto", func(b *testing.B) { run(b, func() nvbit.Tool { return ophisto.New(false) }) })
}

// BenchmarkChannelThroughput measures the streaming-channel subsystem
// end-to-end — warp-aggregated device-side reservation, mid-kernel flushes,
// async receipt — through its heaviest client (memtrace, 280-byte records
// with all 32 lane addresses) on AlexNet. The channel is sized well below
// the trace length so every run exercises buffer recycling; the Drop/Block
// pair prices the backpressure guarantee.
func BenchmarkChannelThroughput(b *testing.B) {
	net := mlsuite.Networks()[0] // AlexNet
	run := func(b *testing.B, policy nvbit.ChannelPolicy) {
		b.ReportAllocs()
		var delivered, dropped uint64
		for i := 0; i < b.N; i++ {
			api, err := gpusim.New(gpusim.Volta)
			if err != nil {
				b.Fatal(err)
			}
			tool := memtrace.New(4096)
			tool.Policy = policy
			tool.Keep = false
			if _, err := nvbit.Attach(api, tool, nvbit.WithScheduler(gpusim.SchedulerParallelSM)); err != nil {
				b.Fatal(err)
			}
			ctx, _ := api.CtxCreate()
			if _, err := mlsuite.Run(ctx, nil, net); err != nil {
				b.Fatal(err)
			}
			st := tool.Stats()
			delivered += st.Delivered
			dropped += st.Dropped
		}
		b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(float64(dropped)/float64(b.N), "dropped/op")
	}
	b.Run("drop", func(b *testing.B) { run(b, nvbit.ChannelDrop) })
	b.Run("block", func(b *testing.B) { run(b, nvbit.ChannelBlock) })
}
